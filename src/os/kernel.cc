#include "kernel.h"

#include <algorithm>
#include <utility>

#include "util/audit.h"
#include "util/logging.h"

namespace pcon {
namespace os {

using util::panicIf;

Kernel::Kernel(hw::Machine &machine, RequestContextManager &requests,
               const KernelConfig &cfg)
    : machine_(machine), requests_(requests), cfg_(cfg),
      cores_(static_cast<std::size_t>(machine.totalCores())),
      disk_(machine, hw::DeviceKind::Disk, cfg.disk,
            [this](Task *t, double b, sim::SimTime s) {
                ioCompleted(hw::DeviceKind::Disk, t, b, s);
            }),
      net_(machine, hw::DeviceKind::Net, cfg.net,
           [this](Task *t, double b, sim::SimTime s) {
               ioCompleted(hw::DeviceKind::Net, t, b, s);
           })
{
    if (cfg_.samplingPeriodCycles <= 0) {
        // Default: one sampling interrupt per ~1 ms of non-halt time.
        cfg_.samplingPeriodCycles = machine.config().freqGhz * 1e6;
    }
    for (auto &core : cores_)
        core.samplerRemainingCycles = cfg_.samplingPeriodCycles;

    // Placement order spreads tasks across chips first, matching the
    // Linux performance-oriented policy the paper observes (Figure 1:
    // on the dual-socket machine both sockets wake at two busy cores).
    const hw::MachineConfig &mc = machine.config();
    for (int slot = 0; slot < mc.coresPerChip; ++slot)
        for (int chip = 0; chip < mc.chips; ++chip)
            placementOrder_.push_back(chip * mc.coresPerChip + slot);
}

Kernel::~Kernel() = default;

void
Kernel::addHooks(KernelHooks *hooks)
{
    panicIf(hooks == nullptr, "null hooks");
    hooks_.push_back(hooks);
}

void
Kernel::setDutyPolicy(std::function<int(const Task &)> policy)
{
    dutyPolicy_ = std::move(policy);
}

void
Kernel::setPStatePolicy(std::function<int(const Task &)> policy)
{
    pstatePolicy_ = std::move(policy);
}

void
Kernel::setStatsProvider(
    std::function<RequestStatsTag(RequestId)> provider)
{
    statsProvider_ = std::move(provider);
}

RequestStatsTag
Kernel::statsFor(RequestId context) const
{
    RequestStatsTag tag{};
    if (statsProvider_ && context != NoRequest)
        tag = statsProvider_(context);
    // The span id travels even without a stats provider: causal
    // stitching does not require the accounting engine.
    tag.spanId = spanFor(context);
    return tag;
}

void
Kernel::setSpanProvider(
    std::function<std::uint64_t(RequestId)> provider)
{
    spanProvider_ = std::move(provider);
}

std::uint64_t
Kernel::spanFor(RequestId context) const
{
    if (!spanProvider_ || context == NoRequest)
        return 0;
    return spanProvider_(context);
}

void
Kernel::setSegmentPerturber(SegmentPerturber fn)
{
    segmentPerturber_ = std::move(fn);
}

TaskId
Kernel::spawn(std::shared_ptr<TaskLogic> logic, const std::string &name,
              RequestId context, int affinity)
{
    panicIf(!logic, "spawn with null logic");
    panicIf(affinity >= machine_.totalCores(),
            "affinity out of range: ", affinity);
    auto task = std::make_unique<Task>();
    task->id = nextTaskId_++;
    task->name = name;
    task->context = context;
    task->affinity = affinity;
    task->logic = std::move(logic);
    task->state = TaskState::Ready;
    task->resumeResult = OpResult{};
    Task *raw = task.get();
    tasks_.emplace(raw->id, std::move(task));
    makeReady(raw);
    return raw->id;
}

void
Kernel::bindContext(TaskId id, RequestId context)
{
    Task *task = findTask(id);
    panicIf(task == nullptr, "bindContext on unknown task ", id);
    rebind(task, context);
}

Task *
Kernel::findTask(TaskId id)
{
    auto it = tasks_.find(id);
    return it == tasks_.end() ? nullptr : it->second.get();
}

bool
Kernel::kill(TaskId id)
{
    Task *task = findTask(id);
    if (task == nullptr || task->state == TaskState::Exited)
        return false;

    switch (task->state) {
      case TaskState::Running:
        deschedule(task->core);
        break;
      case TaskState::Ready:
        for (CoreState &cs : cores_) {
            auto it = std::find(cs.runQueue.begin(),
                                cs.runQueue.end(), task);
            if (it != cs.runQueue.end()) {
                cs.runQueue.erase(it);
                break;
            }
        }
        break;
      case TaskState::Blocked:
        // Detach from socket waits; timer and device completions
        // check the task state and skip exited tasks on their own.
        for (auto &socket : sockets_)
            if (socket->waitingReader_ == task)
                socket->waitingReader_ = nullptr;
        break;
      case TaskState::Exited:
        break;
    }

    for (auto *h : hooks_)
        h->onTaskExit(*task);
    task->state = TaskState::Exited;
    task->logic.reset();

    Task *parent = findTask(task->parent);
    if (parent && parent->waitingForChild == id) {
        parent->waitingForChild = NoTask;
        parent->resumeResult = {OpResult::Kind::ChildExited, 0,
                                NoRequest, id};
        if (task->pendingIo == 0)
            tasks_.erase(id); // task dangles beyond this point
        makeReady(parent);
    }
    // A freed core picks up queued work.
    for (int c = 0; c < machine_.totalCores(); ++c)
        if (cores_[c].current == nullptr)
            scheduleCore(c);
    return true;
}

Task *
Kernel::runningTask(int core)
{
    panicIf(core < 0 || core >= machine_.totalCores(),
            "core out of range: ", core);
    return cores_[core].current;
}

std::pair<Socket *, Socket *>
Kernel::socketPair()
{
    auto a = std::make_unique<Socket>();
    auto b = std::make_unique<Socket>();
    a->peer_ = b.get();
    b->peer_ = a.get();
    a->kernel_ = this;
    b->kernel_ = this;
    a->rx_.bindPool(segmentPool_);
    b->rx_.bindPool(segmentPool_);
    Socket *ra = a.get();
    Socket *rb = b.get();
    sockets_.push_back(std::move(a));
    sockets_.push_back(std::move(b));
    return {ra, rb};
}

std::pair<Socket *, Socket *>
Kernel::connect(Kernel &a, Kernel &b, sim::SimTime latency)
{
    panicIf(latency < 0, "negative link latency");
    auto sa = std::make_unique<Socket>();
    auto sb = std::make_unique<Socket>();
    sa->peer_ = sb.get();
    sb->peer_ = sa.get();
    sa->kernel_ = &a;
    sb->kernel_ = &b;
    sa->rx_.bindPool(a.segmentPool_);
    sb->rx_.bindPool(b.segmentPool_);
    sa->latency_ = latency;
    sb->latency_ = latency;
    Socket *ra = sa.get();
    Socket *rb = sb.get();
    a.sockets_.push_back(std::move(sa));
    b.sockets_.push_back(std::move(sb));
    return {ra, rb};
}

sim::SimTime
Kernel::deviceBusyTime(hw::DeviceKind kind) const
{
    return kind == hw::DeviceKind::Disk ? disk_.busyTime()
                                        : net_.busyTime();
}

std::size_t
Kernel::coreLoad(int core) const
{
    panicIf(core < 0 || core >= machine_.totalCores(),
            "core out of range: ", core);
    const CoreState &cs = cores_[core];
    return cs.runQueue.size() + (cs.current ? 1 : 0);
}

std::size_t
Kernel::totalLoad() const
{
    std::size_t load = 0;
    for (int c = 0; c < machine_.totalCores(); ++c)
        load += coreLoad(c);
    return load;
}

std::size_t
Kernel::liveTaskCount() const
{
    std::size_t live = 0;
    // NOLINT-DETERMINISM(pure count, iteration order irrelevant)
    for (const auto &[id, task] : tasks_)
        if (task->state != TaskState::Exited)
            ++live;
    return live;
}

std::vector<TaskId>
Kernel::liveTaskIds() const
{
    std::vector<TaskId> ids;
    ids.reserve(tasks_.size());
    // NOLINT-DETERMINISM(sorted before returning)
    for (const auto &[id, task] : tasks_)
        if (task->state != TaskState::Exited)
            ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

void
Kernel::reapExited()
{
    for (auto it = tasks_.begin(); it != tasks_.end();) {
        if (it->second->state == TaskState::Exited &&
            it->second->pendingIo == 0)
            it = tasks_.erase(it);
        else
            ++it;
    }
}

// --------------------------- scheduling ---------------------------

void
Kernel::makeReady(Task *task)
{
    task->state = TaskState::Ready;
    int core = task->affinity >= 0 ? task->affinity : pickCore(*task);
    enqueue(core, task);
    scheduleCore(core);
}

int
Kernel::pickCore(const Task &task) const
{
    (void)task;
    int best = placementOrder_.front();
    std::size_t best_load = coreLoad(best);
    for (int core : placementOrder_) {
        std::size_t load = coreLoad(core);
        if (load < best_load) {
            best = core;
            best_load = load;
        }
        if (best_load == 0)
            break;
    }
    return best;
}

void
Kernel::enqueue(int core, Task *task)
{
    CoreState &cs = cores_[core];
    cs.runQueue.push_back(task);
    // A newly runnable competitor starts the preemption clock.
    if (cs.current && cs.current->computing)
        armSlice(core);
}

void
Kernel::scheduleCore(int core)
{
    CoreState &cs = cores_[core];
    while (!cs.current && !cs.runQueue.empty()) {
        Task *next = cs.runQueue.front();
        cs.runQueue.pop_front();
        switchTo(core, next);
        if (!next->computing) {
            // Fresh or resumed logic: run instant ops until the task
            // computes, blocks, or exits.
            resumeLogic(next);
        }
    }
}

void
Kernel::switchTo(int core, Task *next)
{
    CoreState &cs = cores_[core];
    panicIf(cs.current != nullptr, "switchTo with occupied core");
    panicIf(next == nullptr, "switchTo(nullptr)");
    for (auto *h : hooks_)
        h->onContextSwitch(core, nullptr, next);
    cs.current = next;
    next->state = TaskState::Running;
    next->core = core;
    bool actuated = false;
    if (dutyPolicy_) {
        int level = dutyPolicy_(*next);
        PCON_AUDIT_MSG(level >= 1 &&
                           level <= machine_.config().dutyDenom,
                       "duty policy returned level ", level,
                       " outside 1..", machine_.config().dutyDenom,
                       " for task ", next->name);
        machine_.setDutyLevel(core, level);
        actuated = true;
    }
    if (pstatePolicy_) {
        int pstate = pstatePolicy_(*next);
        PCON_AUDIT_MSG(
            pstate >= 0 &&
                pstate <
                    static_cast<int>(machine_.config().pstates.size()),
            "P-state policy returned ", pstate, " outside 0..",
            machine_.config().pstates.size() - 1, " for task ",
            next->name);
        machine_.setPState(core, pstate);
        actuated = true;
    }
    if (actuated)
        for (auto *h : hooks_)
            h->onActuation(core, machine_.dutyLevel(core),
                           machine_.pstate(core));
    if (next->computing) {
        machine_.setRunning(core, next->activity);
        armCompute(core);
        armSampler(core);
        if (!cs.runQueue.empty())
            armSlice(core);
    }
}

void
Kernel::deschedule(int core)
{
    CoreState &cs = cores_[core];
    Task *prev = cs.current;
    panicIf(prev == nullptr, "deschedule on idle core");
    if (prev->computing)
        disarmCompute(core);
    disarmSlice(core);
    disarmSampler(core);
    for (auto *h : hooks_)
        h->onContextSwitch(core, prev, nullptr);
    machine_.setIdle(core);
    cs.current = nullptr;
    prev->core = -1;
}

void
Kernel::preempt(int core)
{
    CoreState &cs = cores_[core];
    cs.sliceEvent = sim::InvalidEventId;
    if (!cs.current)
        return;
    if (cs.runQueue.empty()) {
        // Competitors left meanwhile; keep running, no clock needed
        // until the next enqueue.
        return;
    }
    Task *prev = cs.current;
    deschedule(core);
    prev->state = TaskState::Ready;
    cs.runQueue.push_back(prev);
    scheduleCore(core);
}

// -------------------------- op execution --------------------------

void
Kernel::resumeLogic(Task *task)
{
    for (int i = 0; i < maxInstantOps_; ++i) {
        Op op = task->logic->next(*this, *task, task->resumeResult);
        if (!applyOp(task, op))
            return;
    }
    util::panic("task ", task->name,
                " issued too many zero-time ops in a row");
}

bool
Kernel::applyOp(Task *task, Op op)
{
    return std::visit(
        [&](auto &&concrete) -> bool {
            using T = std::decay_t<decltype(concrete)>;
            if constexpr (std::is_same_v<T, ComputeOp>) {
                if (concrete.cycles <= 0) {
                    task->resumeResult = {OpResult::Kind::Computed};
                    return true;
                }
                startCompute(task, concrete);
                return false;
            } else if constexpr (std::is_same_v<T, SendOp>) {
                doSend(task, concrete);
                task->resumeResult = {OpResult::Kind::Sent};
                return true;
            } else if constexpr (std::is_same_v<T, RecvOp>) {
                return tryRecv(task, concrete);
            } else if constexpr (std::is_same_v<T, ForkOp>) {
                doFork(task, concrete);
                return true;
            } else if constexpr (std::is_same_v<T, WaitChildOp>) {
                return tryWaitChild(task, concrete);
            } else if constexpr (std::is_same_v<T, SleepOp>) {
                doSleep(task, concrete);
                return false;
            } else if constexpr (std::is_same_v<T, IoOp>) {
                doIo(task, concrete);
                return false;
            } else if constexpr (std::is_same_v<T, UserSwitchOp>) {
                // A trapped access to the application's sync
                // structures reveals the user-level transfer; without
                // the trap, the kernel cannot see it.
                if (cfg_.trapUserLevelSwitches)
                    rebind(task, concrete.context);
                task->resumeResult = {OpResult::Kind::UserSwitched};
                return true;
            } else {
                static_assert(std::is_same_v<T, ExitOp>);
                exitTask(task);
                return false;
            }
        },
        std::move(op));
}

void
Kernel::startCompute(Task *task, const ComputeOp &op)
{
    int core = task->core;
    panicIf(core < 0, "startCompute off-core");
    CoreState &cs = cores_[core];
    task->activity = op.activity;
    task->pendingCycles = op.cycles;
    task->computing = true;
    machine_.setRunning(core, task->activity);
    armCompute(core);
    armSampler(core);
    if (!cs.runQueue.empty())
        armSlice(core);
}

void
Kernel::finishCompute(int core)
{
    CoreState &cs = cores_[core];
    cs.computeEvent = sim::InvalidEventId;
    Task *task = cs.current;
    panicIf(task == nullptr || !task->computing,
            "compute completion on idle core");
    task->pendingCycles = 0;
    task->computing = false;
    // The core keeps the old activity on the books until the next op
    // decision, which happens in zero simulated time.
    task->resumeResult = {OpResult::Kind::Computed};
    resumeLogic(task);
    if (!cs.current)
        scheduleCore(core);
}

void
Kernel::doSend(Task *task, const SendOp &op)
{
    panicIf(op.socket == nullptr, "send on null socket");
    op.socket->send(op.bytes, task->context);
}

bool
Kernel::tryRecv(Task *task, const RecvOp &op)
{
    Socket *socket = op.socket;
    panicIf(socket == nullptr, "recv on null socket");
    panicIf(socket->waitingReader_ != nullptr &&
            socket->waitingReader_ != task,
            "two tasks reading one socket");
    if (socket->rx_.empty()) {
        socket->waitingReader_ = task;
        blockCurrent(task);
        return false;
    }
    Segment merged = consumeReadable(socket);
    rebind(task, merged.context);
    for (auto *h : hooks_)
        h->onSegmentReceived(*task, merged);
    task->resumeResult = {OpResult::Kind::Received, merged.bytes,
                          merged.context, NoTask};
    return true;
}

void
Kernel::doFork(Task *task, const ForkOp &op)
{
    panicIf(!op.childLogic, "fork with null child logic");
    TaskId child = spawn(op.childLogic,
                         op.name.empty() ? task->name + "-child"
                                         : op.name,
                         task->context);
    Task *child_task = findTask(child);
    child_task->parent = task->id;
    // spawn() may already have switched the child onto an idle core
    // (firing onContextSwitch for it), so hooks that track fork
    // ancestry must tolerate seeing the child first.
    for (auto *h : hooks_)
        h->onFork(*task, *child_task);
    task->resumeResult = {OpResult::Kind::Forked, 0, NoRequest, child};
}

bool
Kernel::tryWaitChild(Task *task, const WaitChildOp &op)
{
    Task *child = findTask(op.child);
    if (child == nullptr || child->state == TaskState::Exited) {
        if (child != nullptr && child->pendingIo == 0)
            tasks_.erase(op.child);
        task->resumeResult = {OpResult::Kind::ChildExited, 0,
                              NoRequest, op.child};
        return true;
    }
    task->waitingForChild = op.child;
    blockCurrent(task);
    return false;
}

void
Kernel::doSleep(Task *task, const SleepOp &op)
{
    panicIf(op.duration < 0, "negative sleep");
    blockCurrent(task);
    simulation().schedule(op.duration, [this, id = task->id] {
        Task *t = findTask(id);
        if (t == nullptr || t->state != TaskState::Blocked)
            return;
        t->resumeResult = {OpResult::Kind::Slept};
        makeReady(t);
    });
}

void
Kernel::doIo(Task *task, const IoOp &op)
{
    blockCurrent(task);
    ++task->pendingIo;
    IoDevice &device =
        op.device == hw::DeviceKind::Disk ? disk_ : net_;
    device.submit(task, op.bytes);
}

void
Kernel::exitTask(Task *task)
{
    for (auto *h : hooks_)
        h->onTaskExit(*task);
    int core = task->core;
    if (core >= 0) {
        // Free the core (the common case: a task exits while running).
        deschedule(core);
    }
    task->state = TaskState::Exited;
    task->logic.reset();

    Task *parent = findTask(task->parent);
    TaskId exited_id = task->id;
    if (parent && parent->waitingForChild == exited_id) {
        parent->waitingForChild = NoTask;
        parent->resumeResult = {OpResult::Kind::ChildExited, 0,
                                NoRequest, exited_id};
        tasks_.erase(exited_id); // task is dangling beyond this point
        makeReady(parent);
    }
    if (core >= 0)
        scheduleCore(core);
}

void
Kernel::blockCurrent(Task *task)
{
    int core = task->core;
    panicIf(core < 0 || cores_[core].current != task,
            "blockCurrent on a task that is not running");
    deschedule(core);
    task->state = TaskState::Blocked;
    scheduleCore(core);
}

// ----------------------------- timers -----------------------------

void
Kernel::armCompute(int core)
{
    CoreState &cs = cores_[core];
    Task *task = cs.current;
    panicIf(task == nullptr || !task->computing, "armCompute misuse");
    panicIf(cs.computeEvent != sim::InvalidEventId,
            "compute timer double-armed");
    cs.computeRateHz = machine_.workRateHz(core);
    cs.computeArmedAt = simulation().now();
    sim::SimTime delay = sim::secF(task->pendingCycles /
                                   cs.computeRateHz);
    cs.computeEvent = simulation().schedule(
        delay, [this, core] { finishCompute(core); });
}

void
Kernel::disarmCompute(int core)
{
    CoreState &cs = cores_[core];
    if (cs.computeEvent == sim::InvalidEventId)
        return;
    simulation().cancel(cs.computeEvent);
    cs.computeEvent = sim::InvalidEventId;
    Task *task = cs.current;
    panicIf(task == nullptr, "disarmCompute on idle core");
    double elapsed_s =
        sim::toSeconds(simulation().now() - cs.computeArmedAt);
    task->pendingCycles = std::max(
        0.0, task->pendingCycles - elapsed_s * cs.computeRateHz);
}

void
Kernel::armSlice(int core)
{
    CoreState &cs = cores_[core];
    if (cs.sliceEvent != sim::InvalidEventId)
        return;
    cs.sliceEvent = simulation().schedule(
        cfg_.timeslice, [this, core] { preempt(core); });
}

void
Kernel::disarmSlice(int core)
{
    CoreState &cs = cores_[core];
    if (cs.sliceEvent == sim::InvalidEventId)
        return;
    simulation().cancel(cs.sliceEvent);
    cs.sliceEvent = sim::InvalidEventId;
}

void
Kernel::armSampler(int core)
{
    CoreState &cs = cores_[core];
    if (cs.samplerEvent != sim::InvalidEventId)
        return;
    if (!machine_.isBusy(core))
        return; // interrupts suppressed while the core idles
    cs.samplerRateHz = machine_.workRateHz(core);
    cs.samplerArmedAt = simulation().now();
    PCON_AUDIT_MSG(cs.samplerRateHz > 0 &&
                       cs.samplerRemainingCycles >= 0,
                   "sampler deadline corrupt on core ", core,
                   ": rate ", cs.samplerRateHz, " Hz, remaining ",
                   cs.samplerRemainingCycles, " cycles");
    sim::SimTime delay = sim::secF(cs.samplerRemainingCycles /
                                   cs.samplerRateHz);
    cs.samplerEvent = simulation().schedule(
        delay, [this, core] { samplerFired(core); });
}

void
Kernel::disarmSampler(int core)
{
    CoreState &cs = cores_[core];
    if (cs.samplerEvent == sim::InvalidEventId)
        return;
    simulation().cancel(cs.samplerEvent);
    cs.samplerEvent = sim::InvalidEventId;
    double elapsed_s =
        sim::toSeconds(simulation().now() - cs.samplerArmedAt);
    cs.samplerRemainingCycles = std::max(
        1.0, cs.samplerRemainingCycles - elapsed_s * cs.samplerRateHz);
}

void
Kernel::samplerFired(int core)
{
    CoreState &cs = cores_[core];
    cs.samplerEvent = sim::InvalidEventId;
    cs.samplerRemainingCycles = cfg_.samplingPeriodCycles;
    for (auto *h : hooks_)
        h->onSamplingInterrupt(core);
    // A hook may have rearmed via setDutyLevel; armSampler no-ops then.
    armSampler(core);
}

void
Kernel::setDutyLevel(int core, int level)
{
    panicIf(core < 0 || core >= machine_.totalCores(),
            "core out of range: ", core);
    CoreState &cs = cores_[core];
    disarmSampler(core);
    bool computing = cs.current && cs.current->computing;
    if (computing)
        disarmCompute(core);
    machine_.setDutyLevel(core, level);
    if (computing)
        armCompute(core);
    armSampler(core);
    for (auto *h : hooks_)
        h->onActuation(core, machine_.dutyLevel(core),
                       machine_.pstate(core));
}

void
Kernel::setPState(int core, int pstate)
{
    panicIf(core < 0 || core >= machine_.totalCores(),
            "core out of range: ", core);
    CoreState &cs = cores_[core];
    disarmSampler(core);
    bool computing = cs.current && cs.current->computing;
    if (computing)
        disarmCompute(core);
    machine_.setPState(core, pstate);
    if (computing)
        armCompute(core);
    armSampler(core);
    for (auto *h : hooks_)
        h->onActuation(core, machine_.dutyLevel(core),
                       machine_.pstate(core));
}

// ----------------------------- sockets ----------------------------

void
Socket::send(double bytes, RequestId context)
{
    util::panicIf(peer_ == nullptr, "send on unconnected socket");
    util::panicIf(bytes < 0, "negative send size");
    // Piggyback the sending side's request statistics (Section 3.4):
    // the dispatcher reads them off response messages.
    Segment segment{bytes, context, kernel_->statsFor(context)};
    Socket *peer = peer_;
    if (kernel_->segmentPerturber_) {
        for (const SegmentDelivery &d :
             kernel_->segmentPerturber_(segment)) {
            Segment out = d.segment;
            peer->kernel_->simulation().schedule(
                latency_ + d.extraDelay,
                [peer, out] { peer->deliver(out); });
        }
        return;
    }
    peer->kernel_->simulation().schedule(
        latency_, [peer, segment] { peer->deliver(segment); });
}

void
Socket::setDeliveryCallback(std::function<void(double, RequestId)> fn)
{
    deliveryCallback_ = std::move(fn);
}

void
Socket::setSegmentCallback(std::function<void(const Segment &)> fn)
{
    segmentCallback_ = std::move(fn);
}

void
Socket::deliver(const Segment &segment)
{
    lastArrivedTag_ = segment.context;
    if (segmentCallback_) {
        segmentCallback_(segment);
        return;
    }
    if (deliveryCallback_) {
        deliveryCallback_(segment.bytes, segment.context);
        return;
    }
    rx_.push_back(segment);
    if (waitingReader_ != nullptr)
        kernel_->completePendingRecv(this);
}

void
Kernel::completePendingRecv(Socket *socket)
{
    Task *reader = socket->waitingReader_;
    panicIf(reader == nullptr, "no pending reader");
    socket->waitingReader_ = nullptr;
    Segment merged = consumeReadable(socket);
    rebind(reader, merged.context);
    for (auto *h : hooks_)
        h->onSegmentReceived(*reader, merged);
    reader->resumeResult = {OpResult::Kind::Received, merged.bytes,
                            merged.context, NoTask};
    makeReady(reader);
}

Segment
Kernel::consumeReadable(Socket *socket)
{
    panicIf(socket->rx_.empty(), "consume on empty socket");
    Segment merged;
    if (cfg_.perSegmentSocketTagging) {
        // Read the contiguous prefix sharing one request tag so the
        // reader inherits the context of the data it actually reads.
        merged.context = socket->rx_.front().context;
        while (!socket->rx_.empty() &&
               socket->rx_.front().context == merged.context) {
            const Segment &front = socket->rx_.front();
            merged.bytes += front.bytes;
            // Keep the freshest piggybacked statistics: cumulative
            // values mean the last-sent tag supersedes earlier ones.
            if (front.stats.present || front.stats.spanId != 0)
                merged.stats = front.stats;
            socket->rx_.pop_front();
        }
    } else {
        // Naive mode: drain everything under the most recently
        // arrived tag (wrong across back-to-back requests).
        merged.context = socket->lastArrivedTag_;
        while (!socket->rx_.empty()) {
            const Segment &front = socket->rx_.front();
            merged.bytes += front.bytes;
            if (front.stats.present || front.stats.spanId != 0)
                merged.stats = front.stats;
            socket->rx_.pop_front();
        }
    }
    return merged;
}

void
Kernel::rebind(Task *task, RequestId new_ctx)
{
    if (new_ctx == NoRequest || new_ctx == task->context)
        return;
    RequestId old_ctx = task->context;
    for (auto *h : hooks_)
        h->onContextRebind(*task, old_ctx, new_ctx);
    task->context = new_ctx;
}

void
Kernel::ioCompleted(hw::DeviceKind kind, Task *task, double bytes,
                    sim::SimTime busy)
{
    --task->pendingIo;
    // The transfer happened physically, so the hooks (energy
    // attribution) run even for a task killed mid-I/O — but a killed
    // task is not woken.
    for (auto *h : hooks_)
        h->onIoComplete(kind, task->context, busy, bytes);
    if (task->state == TaskState::Exited)
        return;
    task->resumeResult = {OpResult::Kind::IoDone, bytes, NoRequest,
                          NoTask};
    makeReady(task);
}

} // namespace os
} // namespace pcon
