/**
 * @file
 * The simulated operating system kernel: per-core scheduling with
 * timeslice preemption, request-context propagation over sockets,
 * fork and IPC, counter-overflow sampling interrupts, device queues,
 * and duty-cycle control — the substrate the power-container facility
 * instruments (Section 3.3).
 */

#ifndef PCON_OS_KERNEL_H
#define PCON_OS_KERNEL_H

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hw/machine.h"
#include "os/device.h"
#include "os/hooks.h"
#include "os/request_context.h"
#include "os/socket.h"
#include "os/task.h"
#include "sim/simulation.h"
#include "util/sync.h"

namespace pcon {
namespace os {

/** Tunable kernel behaviour. */
struct KernelConfig
{
    /** Round-robin preemption quantum. */
    sim::SimTime timeslice = sim::msec(1);
    /**
     * Non-halt cycles between sampling interrupts; <= 0 selects the
     * default of ~1 ms worth of cycles at the machine's frequency.
     * Interrupts are suppressed while a core idles (Section 3.1).
     */
    double samplingPeriodCycles = 0;
    /**
     * Per-segment socket context tags (the paper's design). False
     * selects the naive socket-inherits-last-tag behaviour that
     * mis-attributes on persistent connections — ablation only.
     */
    bool perSegmentSocketTagging = true;
    /**
     * Trap user-level request stage transfers (UserSwitchOp) and
     * rebind the task's context — the paper's deferred future-work
     * mechanism for event-driven servers. False models the paper's
     * published system, which cannot see user-level transfers.
     */
    bool trapUserLevelSwitches = true;
    /** Disk device characteristics. */
    DeviceConfig disk{100e6, sim::usec(500)};
    /** NIC characteristics. */
    DeviceConfig net{1e9, sim::usec(50)};
};

/**
 * One machine's operating system. Owns tasks and sockets; drives the
 * hw::Machine; multiplexes the per-core sampling timers; invokes
 * KernelHooks at accounting boundaries.
 */
class PCON_SHARD_OWNED Kernel
{
  public:
    /**
     * @param machine Hardware to manage.
     * @param requests Shared request-context identity manager (can
     *        span machines in a cluster).
     * @param cfg Kernel tunables.
     */
    Kernel(hw::Machine &machine, RequestContextManager &requests,
           const KernelConfig &cfg = {});

    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Register instrumentation callbacks (called in order). */
    void addHooks(KernelHooks *hooks);

    /**
     * Install the per-request duty-cycle policy consulted when a core
     * switches to a task: returns the duty level (1..denom) for the
     * incoming task. Power conditioning (Section 3.4) installs this.
     */
    void setDutyPolicy(std::function<int(const Task &)> policy);

    /**
     * Install the per-request DVFS policy consulted when a core
     * switches to a task: returns the P-state index for the incoming
     * task (the alternative actuator to duty-cycle modulation).
     */
    void setPStatePolicy(std::function<int(const Task &)> policy);

    /**
     * Install the provider of per-request statistics piggybacked on
     * outgoing socket messages (Section 3.4's cross-machine tags).
     * The container manager installs this; messages from requests it
     * knows then carry cumulative runtime/energy/power.
     */
    void setStatsProvider(
        std::function<RequestStatsTag(RequestId)> provider);

    /** The stats tag for a context (empty tag without a provider). */
    RequestStatsTag statsFor(RequestId context) const;

    /**
     * Install the provider of the current causal span id for a
     * context (trace::SpanTracer installs this). The id is stamped
     * into every outgoing segment's RequestStatsTag so receivers can
     * stitch child spans across machines; 0 means "no span".
     */
    void setSpanProvider(
        std::function<std::uint64_t(RequestId)> provider);

    /** Current span id for a context (0 without a provider). */
    std::uint64_t spanFor(RequestId context) const;

    /**
     * Install (or clear, with nullptr) the outbound segment
     * perturber (fault injection: loss, duplication, reordering,
     * stale stats tags). Consulted by Socket::send on every segment
     * any socket of this kernel sends.
     */
    void setSegmentPerturber(SegmentPerturber fn);

    /** The installed segment perturber (may be empty). */
    const SegmentPerturber &segmentPerturber() const
    {
        return segmentPerturber_;
    }

    /**
     * Create a task.
     * @param logic Behaviour.
     * @param name Debug name.
     * @param context Initial request-context binding.
     * @param affinity Pinned core, or -1 for any.
     * @return The new task's id.
     */
    TaskId spawn(std::shared_ptr<TaskLogic> logic,
                 const std::string &name,
                 RequestId context = NoRequest, int affinity = -1);

    /** Rebind a task's request context (fires onContextRebind). */
    void bindContext(TaskId task, RequestId context);

    /** Look up a live or zombie task; nullptr when unknown. */
    Task *findTask(TaskId id);

    /**
     * Forcibly terminate a task in any state: descheduled if
     * running, removed from run queues if ready, detached from
     * socket/timer/device waits if blocked. A parent waiting on the
     * task is woken with ChildExited. In-flight device operations
     * complete physically but no longer wake anyone.
     * @return true when a live task was terminated.
     */
    bool kill(TaskId id);

    /** Task currently on a core; nullptr when the core idles. */
    Task *runningTask(int core);

    /** Create a connected socket pair on this machine. */
    std::pair<Socket *, Socket *> socketPair();

    /**
     * Create a socket pair spanning two kernels (machines) with the
     * given one-way latency. first lives on a, second on b.
     */
    static std::pair<Socket *, Socket *>
    connect(Kernel &a, Kernel &b, sim::SimTime latency);

    /**
     * Set a core's duty-cycle level, resynchronizing in-flight
     * compute and sampler deadlines to the new rate.
     */
    void setDutyLevel(int core, int level);

    /**
     * Set a core's DVFS operating point (alternative actuator to
     * duty-cycle modulation), resynchronizing in-flight deadlines.
     */
    void setPState(int core, int pstate);

    /** Managed machine. */
    hw::Machine &machine() { return machine_; }

    /** Event loop. */
    sim::Simulation &simulation() { return machine_.simulation(); }

    /** Request-context identity manager. */
    RequestContextManager &requests() { return requests_; }

    /** Kernel configuration (immutable after construction). */
    const KernelConfig &config() const { return cfg_; }

    /** Cumulative busy time of a device class (OS bookkeeping). */
    sim::SimTime deviceBusyTime(hw::DeviceKind kind) const;

    /** Ready + running tasks on a core (load metric). */
    std::size_t coreLoad(int core) const;

    /** Ready + running tasks across all cores. */
    std::size_t totalLoad() const;

    /** Number of live (not exited) tasks. */
    std::size_t liveTaskCount() const;

    /** Ids of live tasks, ascending (deterministic enumeration). */
    std::vector<TaskId> liveTaskIds() const;

    /** Drop records of exited tasks nobody waits for. */
    void reapExited();

  private:
    friend class Socket;

    struct CoreState
    {
        Task *current = nullptr;
        std::deque<Task *> runQueue;

        sim::EventId computeEvent = sim::InvalidEventId;
        sim::SimTime computeArmedAt = 0;
        double computeRateHz = 0;

        sim::EventId sliceEvent = sim::InvalidEventId;

        sim::EventId samplerEvent = sim::InvalidEventId;
        sim::SimTime samplerArmedAt = 0;
        double samplerRateHz = 0;
        double samplerRemainingCycles = 0;
    };

    // --- scheduling ---
    void makeReady(Task *task);
    int pickCore(const Task &task) const;
    void enqueue(int core, Task *task);
    void scheduleCore(int core);
    void switchTo(int core, Task *next);
    void deschedule(int core);
    void preempt(int core);

    // --- op execution ---
    void resumeLogic(Task *task);
    bool applyOp(Task *task, Op op);
    void startCompute(Task *task, const ComputeOp &op);
    void finishCompute(int core);
    void doSend(Task *task, const SendOp &op);
    bool tryRecv(Task *task, const RecvOp &op);
    void doFork(Task *task, const ForkOp &op);
    bool tryWaitChild(Task *task, const WaitChildOp &op);
    void doSleep(Task *task, const SleepOp &op);
    void doIo(Task *task, const IoOp &op);
    void exitTask(Task *task);
    void blockCurrent(Task *task);

    // --- timers ---
    void armCompute(int core);
    void disarmCompute(int core);
    void armSlice(int core);
    void disarmSlice(int core);
    void armSampler(int core);
    void disarmSampler(int core);
    void samplerFired(int core);

    // --- sockets ---
    void completePendingRecv(Socket *socket);
    Segment consumeReadable(Socket *socket);
    void rebind(Task *task, RequestId new_ctx);

    void ioCompleted(hw::DeviceKind kind, Task *task, double bytes,
                     sim::SimTime busy);

    hw::Machine &machine_;
    RequestContextManager &requests_;
    KernelConfig cfg_;
    std::vector<KernelHooks *> hooks_;
    std::function<int(const Task &)> dutyPolicy_;
    std::function<int(const Task &)> pstatePolicy_;
    std::function<RequestStatsTag(RequestId)> statsProvider_;
    std::function<std::uint64_t(RequestId)> spanProvider_;
    SegmentPerturber segmentPerturber_;

    std::unordered_map<TaskId, std::unique_ptr<Task>> tasks_;
    TaskId nextTaskId_ = 1;
    std::vector<CoreState> cores_;
    std::vector<int> placementOrder_;
    /**
     * Backing store for every local socket's rx segment nodes
     * (os/socket.h SegmentQueue). Declared before sockets_ so the
     * arena outlives the queues pointing into it; unreleased nodes
     * simply die with the arena.
     */
    util::SlabArena segmentArena_;
    util::SlabPool<SegmentQueue::Node> segmentPool_{segmentArena_};
    std::vector<std::unique_ptr<Socket>> sockets_;
    IoDevice disk_;
    IoDevice net_;

    /** Cap on consecutive zero-time ops before declaring livelock. */
    static constexpr int maxInstantOps_ = 100000;
};

} // namespace os
} // namespace pcon

#endif // PCON_OS_KERNEL_H
