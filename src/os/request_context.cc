#include "request_context.h"

#include "util/logging.h"

namespace pcon {
namespace os {

RequestId
RequestContextManager::create(const std::string &type, sim::SimTime now)
{
    RequestId id = nextId_++;
    RequestInfo info;
    info.id = id;
    info.type = type;
    info.created = now;
    auto [it, inserted] = contexts_.emplace(id, std::move(info));
    util::panicIf(!inserted, "duplicate request id");
    for (auto &fn : createListeners_)
        fn(it->second);
    return id;
}

void
RequestContextManager::complete(RequestId id, sim::SimTime now)
{
    auto it = contexts_.find(id);
    util::panicIf(it == contexts_.end(),
                  "complete() on unknown request ", id);
    util::panicIf(it->second.done, "request ", id, " completed twice");
    it->second.done = true;
    it->second.completed = now;
    for (auto &fn : completeListeners_)
        fn(it->second);
}

const RequestInfo &
RequestContextManager::info(RequestId id) const
{
    auto it = contexts_.find(id);
    util::panicIf(it == contexts_.end(), "unknown request ", id);
    return it->second;
}

bool
RequestContextManager::exists(RequestId id) const
{
    return contexts_.find(id) != contexts_.end();
}

void
RequestContextManager::reapCompleted()
{
    for (auto it = contexts_.begin(); it != contexts_.end();) {
        if (it->second.done)
            it = contexts_.erase(it);
        else
            ++it;
    }
}

} // namespace os
} // namespace pcon
