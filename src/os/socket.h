/**
 * @file
 * Sockets with per-segment request-context tagging (Section 3.3).
 *
 * Every message carries its sender's request context, modeling the
 * new-TCP-option tag of the paper. Buffered data keeps *per-segment*
 * tags: on a persistent connection a second request's message can
 * arrive before the first is read, and the reader must inherit the
 * context of the data it actually reads. A "naive" mode in which the
 * socket carries only the most recent tag is available as an ablation
 * (it mis-attributes exactly as the paper warns).
 */

#ifndef PCON_OS_SOCKET_H
#define PCON_OS_SOCKET_H

#include <deque>
#include <functional>
#include <vector>

#include "os/request_context.h"
#include "sim/time.h"
#include "util/units.h"

namespace pcon {
namespace os {

class Kernel;
class Task;

/**
 * Per-request statistics piggybacked on cross-machine messages
 * (Section 3.4): cumulative runtime, cumulative energy, and the most
 * recent power of the sending side's container, so a dispatcher can
 * do comprehensive cross-machine accounting from response messages.
 */
struct RequestStatsTag
{
    /** True when the sending kernel attached statistics. */
    bool present = false;
    /** Cumulative on-CPU time, nanoseconds. */
    double cpuTimeNs = 0;
    /** Cumulative attributed energy. */
    util::Joules energyJ{0};
    /** Most recent power estimate. */
    util::Watts lastPowerW{0};
    /**
     * Sender-side causal span (trace::SpanId; 0 = none). Rides the
     * same piggyback channel as the statistics so a receiving span
     * tracer can stitch cross-machine child spans to their parent
     * (set via Kernel::setSpanProvider).
     */
    std::uint64_t spanId = 0;
};

/** One buffered message with its request-context tag. */
struct Segment
{
    double bytes = 0;
    RequestId context = NoRequest;
    /** Sender-side container statistics (cross-machine accounting). */
    RequestStatsTag stats{};
};

/**
 * One delivery a segment perturber asks for: the (possibly rewritten)
 * segment plus extra latency on top of the link's. Fault injection
 * uses this to drop (empty vector), duplicate, delay/reorder, or
 * stale-tag in-flight messages.
 */
struct SegmentDelivery
{
    sim::SimTime extraDelay = 0;
    Segment segment{};
};

/**
 * Rewrites one sent segment into the deliveries the network actually
 * makes. Installed per sending kernel (Kernel::setSegmentPerturber);
 * applies to every outbound segment of that kernel's sockets.
 */
using SegmentPerturber =
    std::function<std::vector<SegmentDelivery>(const Segment &)>;

/**
 * One endpoint of a connected socket pair. Endpoints are owned by the
 * kernel of the machine they live on; a pair may span two kernels
 * (machines), in which case the link latency applies to deliveries.
 *
 * Tasks use sockets through SendOp/RecvOp. Entities outside any
 * simulated machine (load clients, the cluster dispatcher front-end)
 * use send() with an explicit context tag and consume via
 * setDeliveryCallback().
 */
class Socket
{
  public:
    /** The other end of the connection. */
    Socket *peer() const { return peer_; }

    /** Kernel owning this endpoint. */
    Kernel &kernel() const { return *kernel_; }

    /** One-way delivery latency of the link. */
    sim::SimTime latency() const { return latency_; }

    /**
     * Send bytes to the peer with an explicit context tag. Tasks
     * normally send via SendOp (which tags with the task's bound
     * context); this entry point models client-side senders.
     */
    void send(double bytes, RequestId context);

    /**
     * Consume deliveries with a callback instead of a task reader
     * (client-side endpoints). Segments bypass the rx buffer.
     */
    void setDeliveryCallback(std::function<void(double, RequestId)> fn);

    /**
     * Like setDeliveryCallback but receives the whole segment,
     * including the piggybacked request statistics. Takes precedence
     * when both are set.
     */
    void setSegmentCallback(std::function<void(const Segment &)> fn);

    /** Buffered, unread segments (oldest first). */
    const std::deque<Segment> &buffered() const { return rx_; }

    /** Most recently *arrived* tag (the naive mode's only state). */
    RequestId lastArrivedTag() const { return lastArrivedTag_; }

  private:
    friend class Kernel;

    /** Deliver one segment into this endpoint (post-latency). */
    void deliver(const Segment &segment);

    Socket *peer_ = nullptr;
    Kernel *kernel_ = nullptr;
    sim::SimTime latency_ = 0;
    std::deque<Segment> rx_;
    Task *waitingReader_ = nullptr;
    RequestId lastArrivedTag_ = NoRequest;
    std::function<void(double, RequestId)> deliveryCallback_;
    std::function<void(const Segment &)> segmentCallback_;
};

} // namespace os
} // namespace pcon

#endif // PCON_OS_SOCKET_H
