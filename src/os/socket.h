/**
 * @file
 * Sockets with per-segment request-context tagging (Section 3.3).
 *
 * Every message carries its sender's request context, modeling the
 * new-TCP-option tag of the paper. Buffered data keeps *per-segment*
 * tags: on a persistent connection a second request's message can
 * arrive before the first is read, and the reader must inherit the
 * context of the data it actually reads. A "naive" mode in which the
 * socket carries only the most recent tag is available as an ablation
 * (it mis-attributes exactly as the paper warns).
 */

#ifndef PCON_OS_SOCKET_H
#define PCON_OS_SOCKET_H

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "os/request_context.h"
#include "sim/time.h"
#include "util/slab_arena.h"
#include "util/units.h"

namespace pcon {
namespace os {

class Kernel;
class Task;

/**
 * Per-request statistics piggybacked on cross-machine messages
 * (Section 3.4): cumulative runtime, cumulative energy, and the most
 * recent power of the sending side's container, so a dispatcher can
 * do comprehensive cross-machine accounting from response messages.
 */
struct RequestStatsTag
{
    /** True when the sending kernel attached statistics. */
    bool present = false;
    /** Cumulative on-CPU time, nanoseconds. */
    double cpuTimeNs = 0;
    /** Cumulative attributed energy. */
    util::Joules energyJ{0};
    /** Most recent power estimate. */
    util::Watts lastPowerW{0};
    /**
     * Sender-side causal span (trace::SpanId; 0 = none). Rides the
     * same piggyback channel as the statistics so a receiving span
     * tracer can stitch cross-machine child spans to their parent
     * (set via Kernel::setSpanProvider).
     */
    std::uint64_t spanId = 0;
};

/** One buffered message with its request-context tag. */
struct Segment
{
    double bytes = 0;
    RequestId context = NoRequest;
    /** Sender-side container statistics (cross-machine accounting). */
    RequestStatsTag stats{};
};

/**
 * FIFO of buffered segments over a kernel-owned slab pool (ISSUE 8
 * hot-path pass): push_back/pop_front recycle fixed-size nodes
 * through the pool's intrusive free list, so the per-message buffer
 * churn of a busy connection never touches the global allocator (the
 * former std::deque paid a heap block per burst). Node addresses are
 * stable for the node's lifetime; iteration is oldest-first. Nodes
 * die with the owning kernel's arena, so sockets need no drain-on-
 * destroy pass (Segment is trivially destructible — enforced below).
 */
// pcon-lint: cross-shard
class SegmentQueue
{
  public:
    /** One pooled node; lives in the owning kernel's arena. */
    struct Node
    {
        Segment seg{};
        Node *next = nullptr;
    };

    /** Bind the backing pool; must precede any push_back. */
    void bindPool(util::SlabPool<Node> &pool) { pool_ = &pool; }

    bool empty() const { return head_ == nullptr; }
    std::size_t size() const { return size_; }

    /** Oldest buffered segment; undefined when empty. */
    const Segment &front() const { return head_->seg; }

    /** Buffer a copy of `segment` at the tail. */
    void
    push_back(const Segment &segment)
    {
        Node *node = pool_->allocate();
        node->seg = segment;
        node->next = nullptr;
        if (tail_ == nullptr)
            head_ = node;
        else
            tail_->next = node;
        tail_ = node;
        ++size_;
    }

    /** Drop the oldest segment, recycling its node. */
    void
    pop_front()
    {
        Node *node = head_;
        head_ = node->next;
        if (head_ == nullptr)
            tail_ = nullptr;
        --size_;
        pool_->release(node);
    }

    /** Forward const iterator, oldest segment first. */
    class const_iterator
    {
      public:
        explicit const_iterator(const Node *node) : node_(node) {}

        const Segment &operator*() const { return node_->seg; }
        const Segment *operator->() const { return &node_->seg; }

        const_iterator &
        operator++()
        {
            node_ = node_->next;
            return *this;
        }

        bool
        operator!=(const const_iterator &other) const
        {
            return node_ != other.node_;
        }

        bool
        operator==(const const_iterator &other) const
        {
            return node_ == other.node_;
        }

      private:
        const Node *node_;
    };

    const_iterator begin() const { return const_iterator(head_); }
    const_iterator end() const { return const_iterator(nullptr); }

  private:
    util::SlabPool<Node> *pool_ = nullptr;
    Node *head_ = nullptr;
    Node *tail_ = nullptr;
    std::size_t size_ = 0;
};

static_assert(std::is_trivially_destructible_v<Segment>,
              "SegmentQueue skips per-node destruction; a Segment "
              "with a destructor would leak resources into the arena");

/**
 * One delivery a segment perturber asks for: the (possibly rewritten)
 * segment plus extra latency on top of the link's. Fault injection
 * uses this to drop (empty vector), duplicate, delay/reorder, or
 * stale-tag in-flight messages.
 */
struct SegmentDelivery
{
    sim::SimTime extraDelay = 0;
    Segment segment{};
};

/**
 * Rewrites one sent segment into the deliveries the network actually
 * makes. Installed per sending kernel (Kernel::setSegmentPerturber);
 * applies to every outbound segment of that kernel's sockets.
 */
using SegmentPerturber =
    std::function<std::vector<SegmentDelivery>(const Segment &)>;

/**
 * One endpoint of a connected socket pair. Endpoints are owned by the
 * kernel of the machine they live on; a pair may span two kernels
 * (machines), in which case the link latency applies to deliveries.
 *
 * Tasks use sockets through SendOp/RecvOp. Entities outside any
 * simulated machine (load clients, the cluster dispatcher front-end)
 * use send() with an explicit context tag and consume via
 * setDeliveryCallback().
 */
class Socket
{
  public:
    /** The other end of the connection. */
    Socket *peer() const { return peer_; }

    /** Kernel owning this endpoint. */
    Kernel &kernel() const { return *kernel_; }

    /** One-way delivery latency of the link. */
    sim::SimTime latency() const { return latency_; }

    /**
     * Send bytes to the peer with an explicit context tag. Tasks
     * normally send via SendOp (which tags with the task's bound
     * context); this entry point models client-side senders.
     */
    void send(double bytes, RequestId context);

    /**
     * Consume deliveries with a callback instead of a task reader
     * (client-side endpoints). Segments bypass the rx buffer.
     */
    void setDeliveryCallback(std::function<void(double, RequestId)> fn);

    /**
     * Like setDeliveryCallback but receives the whole segment,
     * including the piggybacked request statistics. Takes precedence
     * when both are set.
     */
    void setSegmentCallback(std::function<void(const Segment &)> fn);

    /** Buffered, unread segments (oldest first; pooled nodes). */
    const SegmentQueue &buffered() const { return rx_; }

    /** Most recently *arrived* tag (the naive mode's only state). */
    RequestId lastArrivedTag() const { return lastArrivedTag_; }

  private:
    friend class Kernel;

    /** Deliver one segment into this endpoint (post-latency). */
    void deliver(const Segment &segment);

    Socket *peer_ = nullptr;
    Kernel *kernel_ = nullptr;
    sim::SimTime latency_ = 0;
    /** Node storage lives in the owning kernel's segment pool. */
    SegmentQueue rx_;
    Task *waitingReader_ = nullptr;
    RequestId lastArrivedTag_ = NoRequest;
    std::function<void(double, RequestId)> deliveryCallback_;
    std::function<void(const Segment &)> segmentCallback_;
};

} // namespace os
} // namespace pcon

#endif // PCON_OS_SOCKET_H
