/**
 * @file
 * Kernel instrumentation points. The power-container facility (core/)
 * implements these to sample counters at request context switches,
 * handle periodic sampling interrupts, and attribute I/O energy —
 * mirroring where the paper hooks Linux.
 */

#ifndef PCON_OS_HOOKS_H
#define PCON_OS_HOOKS_H

#include "hw/machine.h"
#include "os/request_context.h"
#include "sim/time.h"

namespace pcon {
namespace os {

class Task;
struct Segment;

/**
 * Callbacks invoked by the kernel at accounting-relevant moments.
 * Multiple hook sets may be registered; they run in registration
 * order. Implementations may call back into the kernel (e.g. to set
 * duty-cycle levels) except where noted.
 */
class KernelHooks
{
  public:
    virtual ~KernelHooks() = default;

    /**
     * A core is switching tasks. Called before any machine state
     * changes, so counters read here cover the outgoing interval.
     * @param core The core switching.
     * @param prev Outgoing task (nullptr = was idle).
     * @param next Incoming task (nullptr = going idle).
     */
    virtual void
    onContextSwitch(int core, Task *prev, Task *next)
    {
        (void)core; (void)prev; (void)next;
    }

    /**
     * A task's bound request context changed (e.g. it read socket
     * data tagged with a different request). If the task is running,
     * this is an accounting boundary on its core.
     */
    virtual void
    onContextRebind(Task &task, RequestId old_ctx, RequestId new_ctx)
    {
        (void)task; (void)old_ctx; (void)new_ctx;
    }

    /**
     * Periodic counter-overflow interrupt on a busy core (threshold
     * of non-halt cycles reached; suppressed while idle).
     */
    virtual void
    onSamplingInterrupt(int core)
    {
        (void)core;
    }

    /**
     * A device I/O completed. The kernel identifies the responsible
     * request as the one bound to the consuming task (Section 3.3).
     * @param device Which device class.
     * @param context Request the I/O belongs to.
     * @param busy_time Device service time attributable to the op.
     * @param bytes Transferred bytes.
     */
    virtual void
    onIoComplete(hw::DeviceKind device, RequestId context,
                 sim::SimTime busy_time, double bytes)
    {
        (void)device; (void)context; (void)busy_time; (void)bytes;
    }

    /** A task exited. */
    virtual void
    onTaskExit(Task &task)
    {
        (void)task;
    }

    /**
     * A task forked a child (the child inherits the parent's request
     * context). Fired after the child is runnable — the child may
     * already have been switched onto an idle core, so an
     * onContextSwitch for it can precede this callback. Span tracing
     * uses this to parent the child's spans under the forking stage.
     */
    virtual void
    onFork(Task &parent, Task &child)
    {
        (void)parent; (void)child;
    }

    /**
     * A task's pending receive completed: `segment` is the merged
     * contiguous same-context data it consumed, including the
     * sender's piggybacked RequestStatsTag (Section 3.4). Fired after
     * the reader was rebound to the segment's context, so span
     * tracing can stitch the receive to the sending side's span.
     */
    virtual void
    onSegmentReceived(Task &task, const Segment &segment)
    {
        (void)task; (void)segment;
    }

    /**
     * A core's power actuators were written: the duty-cycle level
     * and/or P-state changed (per-request policy application at a
     * context switch, or an explicit kernel actuation). Both current
     * values are reported. Observability hook: implementations must
     * not actuate from inside it (setDutyLevel/setPState re-enter).
     */
    virtual void
    onActuation(int core, int duty_level, int pstate)
    {
        (void)core; (void)duty_level; (void)pstate;
    }
};

} // namespace os
} // namespace pcon

#endif // PCON_OS_HOOKS_H
