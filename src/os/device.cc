#include "device.h"

#include <utility>

#include "util/logging.h"

namespace pcon {
namespace os {

IoDevice::IoDevice(hw::Machine &machine, hw::DeviceKind kind,
                   const DeviceConfig &cfg, CompletionFn on_complete)
    : machine_(machine), kind_(kind), cfg_(cfg),
      onComplete_(std::move(on_complete))
{
    util::fatalIf(cfg.bytesPerSec <= 0,
                  "device bandwidth must be positive");
    util::fatalIf(cfg.perOpLatency < 0,
                  "device latency cannot be negative");
}

void
IoDevice::submit(Task *task, double bytes)
{
    util::panicIf(bytes < 0, "negative I/O size");
    queue_.push_back(PendingOp{task, bytes});
    if (!serving_)
        startNext();
}

void
IoDevice::startNext()
{
    util::panicIf(queue_.empty(), "startNext on empty device queue");
    serving_ = true;
    machine_.setDeviceBusy(kind_, true);
    const PendingOp &op = queue_.front();
    currentServiceTime_ = cfg_.perOpLatency +
        sim::secF(op.bytes / cfg_.bytesPerSec);
    machine_.simulation().schedule(currentServiceTime_,
                                   [this] { finishCurrent(); });
}

void
IoDevice::finishCurrent()
{
    util::panicIf(queue_.empty(), "completion with empty device queue");
    PendingOp op = queue_.front();
    queue_.pop_front();
    machine_.setDeviceBusy(kind_, false);
    serving_ = false;
    sim::SimTime service = currentServiceTime_;
    busyTimeNs_ += service;
    if (!queue_.empty())
        startNext();
    onComplete_(op.task, op.bytes, service);
}

} // namespace os
} // namespace pcon
