/**
 * @file
 * Request context identity and lifecycle (Section 3.3). A request
 * context is the unit the power-container facility accounts against;
 * it flows across processes via sockets, fork, and IPC. The manager
 * here owns identity, type tags, and lifecycle notifications; the
 * accounting state itself (the power container) lives in core/.
 */

#ifndef PCON_OS_REQUEST_CONTEXT_H
#define PCON_OS_REQUEST_CONTEXT_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace pcon {
namespace os {

/** Identifier of a request context; 0 means "no context". */
using RequestId = std::uint64_t;

/** The null context. */
constexpr RequestId NoRequest = 0;

/** Static and lifecycle information about one request context. */
struct RequestInfo
{
    /** Unique id. */
    RequestId id = NoRequest;
    /** Workload-defined request type tag (e.g. "rsa-large"). */
    std::string type;
    /** Creation (arrival) time. */
    sim::SimTime created = 0;
    /** Completion time; meaningful when completed. */
    sim::SimTime completed = 0;
    /** True once complete() was called. */
    bool done = false;
};

/**
 * Issues request ids and broadcasts lifecycle events. The container
 * manager subscribes to create/complete to allocate and release
 * per-request accounting state.
 */
class RequestContextManager
{
  public:
    using Listener = std::function<void(const RequestInfo &)>;

    /** Create a new context of the given type at time `now`. */
    RequestId create(const std::string &type, sim::SimTime now);

    /** Mark a context complete at time `now`; notifies listeners. */
    void complete(RequestId id, sim::SimTime now);

    /** Look up a context; panics on unknown id. */
    const RequestInfo &info(RequestId id) const;

    /** True when the id exists (and is not NoRequest). */
    bool exists(RequestId id) const;

    /** Subscribe to context creation. */
    void onCreate(Listener fn) { createListeners_.push_back(fn); }

    /** Subscribe to context completion. */
    void onComplete(Listener fn) { completeListeners_.push_back(fn); }

    /** Number of contexts created so far. */
    std::size_t createdCount() const { return contexts_.size(); }

    /** Remove completed contexts from the table (space reclamation). */
    void reapCompleted();

  private:
    RequestId nextId_ = 1;
    std::unordered_map<RequestId, RequestInfo> contexts_;
    std::vector<Listener> createListeners_;
    std::vector<Listener> completeListeners_;
};

} // namespace os
} // namespace pcon

#endif // PCON_OS_REQUEST_CONTEXT_H
