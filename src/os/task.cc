#include "task.h"

#include "util/logging.h"

namespace pcon {
namespace os {

Op
ScriptedLogic::next(Kernel &kernel, Task &self, const OpResult &last)
{
    if (index_ >= steps_.size()) {
        if (!loop_)
            return ExitOp{};
        index_ = 0;
    }
    util::panicIf(steps_.empty(), "ScriptedLogic with no steps");
    Step &step = steps_[index_++];
    return step(kernel, self, last);
}

} // namespace os
} // namespace pcon
