/**
 * @file
 * Peripheral I/O devices (disk, NIC) as FIFO service queues. A device
 * is busy (drawing active power in hw/) while servicing; completions
 * raise an interrupt that the kernel turns into an onIoComplete hook
 * and a task wakeup.
 */

#ifndef PCON_OS_DEVICE_H
#define PCON_OS_DEVICE_H

#include <deque>
#include <functional>

#include "hw/machine.h"
#include "os/task.h"
#include "sim/time.h"

namespace pcon {
namespace os {

/** Service characteristics of one device. */
struct DeviceConfig
{
    /** Sustained transfer bandwidth, bytes per second. */
    double bytesPerSec = 100e6;
    /** Fixed per-operation latency (seek, interrupt, DMA setup). */
    sim::SimTime perOpLatency = sim::usec(100);
};

/**
 * FIFO device queue. Operations are serviced one at a time; the
 * machine-level device-busy flag is held for the whole span during
 * which the queue is non-empty.
 */
class IoDevice
{
  public:
    /** Completion callback: (task, bytes, service_time). */
    using CompletionFn =
        std::function<void(Task *, double, sim::SimTime)>;

    /**
     * @param machine Machine whose device power this drives.
     * @param kind Device class (Disk or Net).
     * @param cfg Service characteristics.
     * @param on_complete Invoked at each completion interrupt.
     */
    IoDevice(hw::Machine &machine, hw::DeviceKind kind,
             const DeviceConfig &cfg, CompletionFn on_complete);

    /** Enqueue an operation on behalf of a (blocked) task. */
    void submit(Task *task, double bytes);

    /** Operations waiting or in service. */
    std::size_t queueDepth() const { return queue_.size(); }

    /**
     * Cumulative device busy time (sum of completed service spans).
     * OS-visible bookkeeping, used to form device-utilization metrics
     * for power model calibration.
     */
    sim::SimTime busyTime() const { return busyTimeNs_; }

    /** Device class. */
    hw::DeviceKind kind() const { return kind_; }

  private:
    struct PendingOp
    {
        Task *task;
        double bytes;
    };

    void startNext();
    void finishCurrent();

    hw::Machine &machine_;
    hw::DeviceKind kind_;
    DeviceConfig cfg_;
    CompletionFn onComplete_;
    std::deque<PendingOp> queue_;
    bool serving_ = false;
    sim::SimTime currentServiceTime_ = 0;
    sim::SimTime busyTimeNs_ = 0;
};

} // namespace os
} // namespace pcon

#endif // PCON_OS_DEVICE_H
