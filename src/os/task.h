/**
 * @file
 * Task (process/thread) model. Task behaviour is a pull-based state
 * machine: the kernel asks the task's TaskLogic for its next
 * operation each time the previous one completes, passing the result
 * of the completed operation. This lets multi-stage server programs
 * (Figure 4's httpd -> MySQL -> shell -> latex -> dvipng chain) be
 * expressed without coroutines while the kernel retains full control
 * of blocking and scheduling.
 */

#ifndef PCON_OS_TASK_H
#define PCON_OS_TASK_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "hw/activity.h"
#include "hw/machine.h"
#include "os/request_context.h"
#include "sim/time.h"

namespace pcon {
namespace os {

class Kernel;
class Socket;
class Task;

/** Task identifier; 0 is invalid. */
using TaskId = std::uint64_t;

/** The invalid task id. */
constexpr TaskId NoTask = 0;

/** Execute on-CPU work with the given signature for `cycles` cycles. */
struct ComputeOp
{
    hw::ActivityVector activity;
    double cycles;
};

/** Block off-CPU for a fixed duration (timers, think time). */
struct SleepOp
{
    sim::SimTime duration;
};

/**
 * Send bytes on a socket. The message is tagged with the sender's
 * current request context (the TCP-option tag of Section 3.3).
 */
struct SendOp
{
    Socket *socket;
    double bytes;
};

/**
 * Receive from a socket; blocks until data arrives. Reads only the
 * contiguous prefix of buffered segments that share one context tag,
 * and rebinds the reader to that context.
 */
struct RecvOp
{
    Socket *socket;
};

/** Fork a child process running `childLogic`; inherits the context. */
struct ForkOp
{
    std::shared_ptr<class TaskLogic> childLogic;
    std::string name;
};

/** Block until the given child exits (wait4-style). */
struct WaitChildOp
{
    TaskId child;
};

/** Submit a device I/O and block until its completion interrupt. */
struct IoOp
{
    hw::DeviceKind device;
    double bytes;
};

/**
 * A *user-level* request stage transfer: an event-driven server (or
 * user-level thread library) resumes a different request's
 * continuation by touching its run-queue/sync structures, with no
 * system call. The paper notes such transfers are invisible to
 * OS-only tracking, and defers the fix — trapping accesses to the
 * critical synchronization structures (Whodunit-style) — to future
 * work (Section 3.3). This op models the access: when the kernel's
 * trapUserLevelSwitches knob is on, the trap fires and the task's
 * context is rebound; when off, the kernel misses the transfer and
 * keeps charging the previous request.
 */
struct UserSwitchOp
{
    /** The request whose continuation the application resumes. */
    RequestId context;
};

/** Terminate the task. */
struct ExitOp
{};

/** Any operation a task can request from the kernel. */
using Op = std::variant<ComputeOp, SleepOp, SendOp, RecvOp, ForkOp,
                        WaitChildOp, IoOp, UserSwitchOp, ExitOp>;

/** Result of the most recently completed operation. */
struct OpResult
{
    enum class Kind {
        /** First call: the task just started. */
        Started,
        Computed,
        Slept,
        Sent,
        Received,
        Forked,
        ChildExited,
        IoDone,
        UserSwitched,
    };

    Kind kind = Kind::Started;
    /** Bytes received (Received) or transferred (IoDone). */
    double bytes = 0;
    /** Context tag attached to received data (Received). */
    RequestId context = NoRequest;
    /** Child task id (Forked / ChildExited). */
    TaskId child = NoTask;
};

/**
 * The behaviour of a task. next() is called once at start (result
 * kind Started) and after every completed operation; it returns the
 * task's next operation. Return ExitOp to finish.
 */
class TaskLogic
{
  public:
    virtual ~TaskLogic() = default;

    /**
     * Produce the next operation.
     * @param kernel The kernel running this task (for socket lookup
     *        and similar queries; mutation is through ops only).
     * @param self The task executing this logic.
     * @param last Result of the previously completed operation.
     */
    virtual Op next(Kernel &kernel, Task &self, const OpResult &last) = 0;
};

/**
 * A TaskLogic built from a list of op generators, optionally looping
 * forever. Each generator may inspect the previous result; this
 * covers straight-line and simple server-loop programs, which is most
 * of the workload suite.
 */
class ScriptedLogic : public TaskLogic
{
  public:
    using Step = std::function<Op(Kernel &, Task &, const OpResult &)>;

    /**
     * @param steps Ordered op generators.
     * @param loop Restart from step 0 after the last step (server
     *        worker loop) instead of exiting.
     */
    explicit ScriptedLogic(std::vector<Step> steps, bool loop = false)
        : steps_(std::move(steps)), loop_(loop)
    {}

    Op next(Kernel &kernel, Task &self, const OpResult &last) override;

  private:
    std::vector<Step> steps_;
    bool loop_;
    std::size_t index_ = 0;
};

/**
 * A TaskLogic wrapping a single callable: the callable *is* next().
 * Convenient for tests and for workload processes whose control flow
 * is easier to express as an explicit state machine.
 */
class LambdaLogic : public TaskLogic
{
  public:
    using Fn = std::function<Op(Kernel &, Task &, const OpResult &)>;

    explicit LambdaLogic(Fn fn) : fn_(std::move(fn)) {}

    Op
    next(Kernel &kernel, Task &self, const OpResult &last) override
    {
        return fn_(kernel, self, last);
    }

  private:
    Fn fn_;
};

/** Scheduling state of a task. */
enum class TaskState {
    /** Waiting in a run queue. */
    Ready,
    /** Currently executing on a core. */
    Running,
    /** Waiting on a socket, timer, device, or child. */
    Blocked,
    /** Finished; kept until a waiter reaps it. */
    Exited,
};

/**
 * One schedulable entity. Owned by the kernel; workloads interact
 * with tasks through ids and the TaskLogic callbacks.
 */
// pcon-lint: shard-owned
class Task
{
  public:
    /** Unique id. */
    TaskId id = NoTask;
    /** Debug name (e.g. "httpd-3", "latex"). */
    std::string name;
    /** Scheduling state. */
    TaskState state = TaskState::Ready;
    /** Currently bound request context (NoRequest = none). */
    RequestId context = NoRequest;
    /** Pinned core, or -1 for any. */
    int affinity = -1;
    /** Core the task is running on (valid when Running). */
    int core = -1;
    /** Parent task (NoTask for roots). */
    TaskId parent = NoTask;

    /** Behaviour; released at exit. */
    std::shared_ptr<TaskLogic> logic;

    /** Remaining cycles of the current ComputeOp. */
    double pendingCycles = 0;
    /** Activity signature of the current ComputeOp. */
    hw::ActivityVector activity{};
    /** True while the current op is a ComputeOp. */
    bool computing = false;

    /** Result to deliver to logic->next() when it resumes. */
    OpResult resumeResult{};

    /** Task blocked waiting for this child to exit. */
    TaskId waitingForChild = NoTask;

    /** Device operations in flight (defers record reaping). */
    int pendingIo = 0;
};

} // namespace os
} // namespace pcon

#endif // PCON_OS_TASK_H
