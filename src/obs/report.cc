#include "report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "util/logging.h"

namespace pcon {
namespace obs {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

/** Energy in joules with microjoule precision. */
std::string
joules(double j)
{
    return fmt("%.6f", j);
}

std::string
millis(sim::SimTime t)
{
    return fmt("%.3f", static_cast<double>(t) * 1e-6);
}

/** JSON string escaping for span/root names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const trace::SpanCollector &
detail(const EnergyIndex &index)
{
    const trace::SpanCollector *collector = index.collector();
    util::panicIf(collector == nullptr,
                  "span-detail report on a detached EnergyIndex");
    return *collector;
}

} // namespace

std::string
reportTopRequests(const EnergyIndex &index, std::size_t top_n)
{
    std::ostringstream out;
    out << "top requests by energy\n"
        << "rank request name spans machines energy_j wall_ms\n";
    std::vector<os::RequestId> ids = index.ranked();
    std::size_t shown = 0;
    for (os::RequestId id : ids) {
        if (shown >= top_n)
            break;
        ++shown;
        RequestRollup r = index.rollup(id);
        out << shown << " " << id << " " << r.rootName << " "
            << r.spanCount << " " << r.machineCount << " "
            << joules(r.energyJ.value()) << " " << millis(r.wall)
            << "\n";
    }
    if (shown == 0)
        out << "(no spans)\n";
    return out.str();
}

std::string
reportStageBreakdown(const EnergyIndex &index, os::RequestId request)
{
    const trace::SpanCollector &collector = detail(index);
    std::ostringstream out;
    out << "stages of request " << request << " ("
        << index.rootName(request) << ")\n"
        << "span parent kind machine name energy_j avg_power_w"
        << " cpu_ms io_bytes\n";
    util::Joules total{0};
    for (trace::SpanId id : index.requestSpans(request)) {
        const trace::Span &s = collector.span(id);
        out << s.id << " " << s.parent << " "
            << trace::spanKindName(s.kind) << " m" << s.machine << " "
            << s.name << " " << joules(s.energyJ.value()) << " "
            << fmt("%.3f", s.avgPowerW().value()) << " "
            << fmt("%.3f", s.cpuTimeNs * 1e-6) << " "
            << fmt("%.0f", s.ioBytes) << "\n";
        total += s.energyJ;
    }
    out << "total " << joules(total.value()) << "\n";
    return out.str();
}

std::string
reportCriticalPath(const EnergyIndex &index, os::RequestId request)
{
    const trace::SpanCollector &collector = detail(index);
    std::ostringstream out;
    out << "critical path of request " << request << "\n"
        << "span kind machine name open_ms close_ms energy_j\n";
    std::vector<trace::SpanId> path = collector.criticalPath(request);
    for (trace::SpanId id : path) {
        const trace::Span &s = collector.span(id);
        out << s.id << " " << trace::spanKindName(s.kind) << " m"
            << s.machine << " " << s.name << " " << millis(s.openedAt)
            << " " << millis(s.closedAt) << " "
            << joules(s.energyJ.value())
            << "\n";
    }
    if (path.empty())
        out << "(no closed spans)\n";
    return out.str();
}

std::string
reportMachineImbalance(const EnergyIndex &index)
{
    std::ostringstream out;
    out << "cross-machine energy imbalance\n"
        << "request name";
    std::vector<int> machines = index.machines();
    for (int m : machines)
        out << " m" << m << "_j";
    out << " dominant_share\n";
    std::vector<os::RequestId> ids = index.requests();
    for (os::RequestId id : ids) {
        double total = index.requestEnergyJ(id).value();
        double peak = 0;
        out << id << " " << index.rootName(id);
        for (int m : machines) {
            double e = index.machineEnergyJ(id, m).value();
            peak = std::max(peak, e);
            out << " " << joules(e);
        }
        out << " " << fmt("%.3f", total > 0 ? peak / total : 0.0)
            << "\n";
    }
    if (ids.empty())
        out << "(no spans)\n";
    return out.str();
}

std::string
fullReport(const EnergyIndex &index, const ReportOptions &opts)
{
    std::ostringstream out;
    out << reportTopRequests(index, opts.topN);
    std::vector<os::RequestId> ids = index.topRequests(opts.topN);
    for (os::RequestId id : ids) {
        if (opts.stageBreakdown)
            out << "\n" << reportStageBreakdown(index, id);
        if (opts.criticalPath)
            out << "\n" << reportCriticalPath(index, id);
    }
    if (opts.machineImbalance)
        out << "\n" << reportMachineImbalance(index);
    return out.str();
}

std::string
reportJson(const EnergyIndex &index, const ReportOptions &opts)
{
    std::ostringstream out;
    out << "{\"schema\":\"pcon-trace-report-v1\",\"requests\":[";
    std::vector<os::RequestId> ids = index.topRequests(opts.topN);
    bool first_req = true;
    for (os::RequestId id : ids) {
        if (!first_req)
            out << ",";
        first_req = false;
        RequestRollup r = index.rollup(id);
        out << "{\"request\":" << id << ",\"root\":\""
            << jsonEscape(r.rootName) << "\",\"spans\":"
            << r.spanCount << ",\"machines\":" << r.machineCount
            << ",\"energy_j\":" << joules(r.energyJ.value())
            << ",\"wall_ms\":" << millis(r.wall);
        if (opts.stageBreakdown) {
            const trace::SpanCollector &collector = detail(index);
            out << ",\"stages\":[";
            bool first = true;
            for (trace::SpanId sp : index.requestSpans(id)) {
                const trace::Span &s = collector.span(sp);
                if (!first)
                    out << ",";
                first = false;
                out << "{\"span\":" << s.id << ",\"parent\":"
                    << s.parent << ",\"kind\":\""
                    << trace::spanKindName(s.kind) << "\",\"machine\":"
                    << s.machine << ",\"name\":\""
                    << jsonEscape(s.name) << "\",\"energy_j\":"
                    << joules(s.energyJ.value())
                    << ",\"avg_power_w\":"
                    << fmt("%.3f", s.avgPowerW().value())
                    << ",\"cpu_ms\":"
                    << fmt("%.3f", s.cpuTimeNs * 1e-6)
                    << ",\"io_bytes\":" << fmt("%.0f", s.ioBytes)
                    << "}";
            }
            out << "]";
        }
        if (opts.criticalPath) {
            const trace::SpanCollector &collector = detail(index);
            out << ",\"critical_path\":[";
            bool first = true;
            for (trace::SpanId sp : collector.criticalPath(id)) {
                const trace::Span &s = collector.span(sp);
                if (!first)
                    out << ",";
                first = false;
                out << "{\"span\":" << s.id << ",\"kind\":\""
                    << trace::spanKindName(s.kind) << "\",\"machine\":"
                    << s.machine << ",\"name\":\""
                    << jsonEscape(s.name) << "\",\"open_ms\":"
                    << millis(s.openedAt) << ",\"close_ms\":"
                    << millis(s.closedAt) << ",\"energy_j\":"
                    << joules(s.energyJ.value()) << "}";
            }
            out << "]";
        }
        out << "}";
    }
    out << "]";
    if (opts.machineImbalance) {
        out << ",\"machine_imbalance\":[";
        std::vector<int> machines = index.machines();
        bool first = true;
        for (os::RequestId id : index.requests()) {
            if (!first)
                out << ",";
            first = false;
            double total = index.requestEnergyJ(id).value();
            double peak = 0;
            out << "{\"request\":" << id << ",\"root\":\""
                << jsonEscape(index.rootName(id))
                << "\",\"per_machine_j\":{";
            bool first_m = true;
            for (int m : machines) {
                double e = index.machineEnergyJ(id, m).value();
                peak = std::max(peak, e);
                if (!first_m)
                    out << ",";
                first_m = false;
                out << "\"m" << m << "\":" << joules(e);
            }
            out << "},\"dominant_share\":"
                << fmt("%.3f", total > 0 ? peak / total : 0.0)
                << "}";
        }
        out << "]";
    }
    out << "}";
    return out.str();
}

} // namespace obs
} // namespace pcon
