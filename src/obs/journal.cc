#include "journal.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace pcon {
namespace obs {

namespace {

/** JSON string escaping for what/detail fields. */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (const char *p = s; *p != '\0'; ++p) {
        char c = *p;
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

void
copyTruncated(char *dst, std::size_t cap, const std::string &src)
{
    std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

} // namespace

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warn: return "warn";
      case Severity::Error: return "error";
    }
    return "info";
}

const char *
recordKindName(RecordKind kind)
{
    switch (kind) {
      case RecordKind::Throttle: return "throttle";
      case RecordKind::Rebind: return "rebind";
      case RecordKind::Refit: return "refit";
      case RecordKind::Fault: return "fault";
      case RecordKind::Alert: return "alert";
    }
    return "alert";
}

Journal::Journal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    util::LockGuard lock(mu_);
    ring_ = static_cast<JournalRecord *>(arena_.allocate(
        capacity_ * sizeof(JournalRecord), alignof(JournalRecord)));
    for (std::size_t i = 0; i < capacity_; ++i)
        ::new (static_cast<void *>(ring_ + i)) JournalRecord();
}

void
Journal::append(RecordKind kind, Severity severity, sim::SimTime at,
                os::RequestId container, os::RequestId request,
                const std::string &what, const std::string &detail,
                double value)
{
    util::LockGuard lock(mu_);
    JournalRecord &slot = ring_[total_ % capacity_];
    slot.seq = total_;
    slot.at = at;
    slot.kind = kind;
    slot.severity = severity;
    slot.container = container;
    slot.request = request;
    slot.value = value;
    copyTruncated(slot.what, sizeof(slot.what), what);
    copyTruncated(slot.detail, sizeof(slot.detail), detail);
    ++total_;
    if (live_ < capacity_)
        ++live_;
    ++bySeverity_[static_cast<std::size_t>(severity)];
    ++byKind_[static_cast<std::size_t>(kind)];
}

std::vector<JournalRecord>
Journal::snapshot() const
{
    util::LockGuard lock(mu_);
    std::vector<JournalRecord> out;
    out.reserve(live_);
    for (std::uint64_t seq = total_ - live_; seq < total_; ++seq)
        out.push_back(ring_[seq % capacity_]);
    return out;
}

std::string
Journal::jsonl() const
{
    std::ostringstream out;
    for (const JournalRecord &r : snapshot()) {
        out << "{\"seq\":" << r.seq << ",\"t_ms\":"
            << fmt("%.3f", static_cast<double>(r.at) * 1e-6)
            << ",\"kind\":\"" << recordKindName(r.kind)
            << "\",\"severity\":\"" << severityName(r.severity)
            << "\",\"container\":" << r.container << ",\"request\":"
            << r.request << ",\"what\":\"" << jsonEscape(r.what)
            << "\",\"detail\":\"" << jsonEscape(r.detail)
            << "\",\"value\":" << fmt("%.6f", r.value) << "}\n";
    }
    return out.str();
}

void
Journal::writeJsonl(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    util::fatalIf(!out, "cannot open '", path, "' for writing");
    out << jsonl();
}

std::size_t
Journal::size() const
{
    util::LockGuard lock(mu_);
    return live_;
}

std::uint64_t
Journal::totalAppended() const
{
    util::LockGuard lock(mu_);
    return total_;
}

std::uint64_t
Journal::dropped() const
{
    util::LockGuard lock(mu_);
    return total_ > capacity_ ? total_ - capacity_ : 0;
}

std::uint64_t
Journal::countBySeverity(Severity severity) const
{
    util::LockGuard lock(mu_);
    return bySeverity_[static_cast<std::size_t>(severity)];
}

std::uint64_t
Journal::countByKind(RecordKind kind) const
{
    util::LockGuard lock(mu_);
    return byKind_[static_cast<std::size_t>(kind)];
}

void
Journal::clear()
{
    util::LockGuard lock(mu_);
    live_ = 0;
}

} // namespace obs
} // namespace pcon
