#include "energy_index.h"

#include <algorithm>

namespace pcon {
namespace obs {

EnergyIndex::~EnergyIndex()
{
    detach();
}

void
EnergyIndex::attach(trace::SpanCollector &collector)
{
    detach();
    {
        util::LockGuard lock(mu_);
        collector_ = &collector;
        // Absorb already-recorded spans in id order — the same
        // floating-point addition sequence the collector's own
        // O(trace) scans perform, so rebuilt rollups match them
        // bit-for-bit (the byte-identity contract of obs/report.h).
        for (const trace::Span &s : collector.spans()) {
            absorbOpen(s);
            if (!s.open)
                absorbClose(s);
        }
    }
    // Install the hook after absorbing: attach() runs at wiring or
    // reload time, when no tracer is mutating the collector (the
    // same single-threaded contract as SpanCollector moves).
    collector.setObserver(this);
}

void
EnergyIndex::detach()
{
    trace::SpanCollector *old = nullptr;
    {
        util::LockGuard lock(mu_);
        old = collector_;
        collector_ = nullptr;
        requests_.clear();
        ranking_.clear();
        machineEnergy_.clear();
        totalEnergyJ_ = util::Joules{0};
        spanCount_ = 0;
        openSpans_ = 0;
    }
    // Outside mu_: the collector lock is acquired before the index
    // lock on the callback path, never after.
    if (old != nullptr)
        old->setObserver(nullptr);
}

const trace::SpanCollector *
EnergyIndex::collector() const
{
    util::LockGuard lock(mu_);
    return collector_;
}

EnergyIndex::PerRequest &
EnergyIndex::entryFor(os::RequestId request)
{
    auto it = requests_.find(request);
    if (it != requests_.end())
        return it->second;
    PerRequest &entry = requests_[request];
    entry.rootName = "?";
    ranking_.insert(RankKey{util::Joules{0}, request});
    return entry;
}

const EnergyIndex::PerRequest *
EnergyIndex::find(os::RequestId request) const
{
    auto it = requests_.find(request);
    return it == requests_.end() ? nullptr : &it->second;
}

void
EnergyIndex::reRank(os::RequestId request, util::Joules old_energy,
                    util::Joules new_energy)
{
    if (old_energy == new_energy)
        return;
    ranking_.erase(RankKey{old_energy, request});
    ranking_.insert(RankKey{new_energy, request});
}

void
EnergyIndex::absorbOpen(const trace::Span &span)
{
    PerRequest &entry = entryFor(span.request);
    util::Joules before = entry.energyJ;
    entry.spans.push_back(span.id);
    ++entry.open;
    ++openSpans_;
    ++spanCount_;
    if (span.kind == trace::SpanKind::Root)
        entry.rootName = span.name;
    // The reload path delivers fully-formed spans: fold their
    // accumulated totals here (zeros on the live path, where open
    // precedes every charge).
    entry.energyJ += span.energyJ;
    entry.cpuTimeNs += span.cpuTimeNs;
    auto slot = std::find_if(
        entry.machineEnergy.begin(), entry.machineEnergy.end(),
        [&span](const std::pair<int, util::Joules> &p) {
            return p.first == span.machine;
        });
    if (slot == entry.machineEnergy.end()) {
        entry.machineEnergy.emplace_back(span.machine, span.energyJ);
        std::sort(entry.machineEnergy.begin(),
                  entry.machineEnergy.end(),
                  [](const std::pair<int, util::Joules> &a,
                     const std::pair<int, util::Joules> &b) {
                      return a.first < b.first;
                  });
    } else {
        slot->second += span.energyJ;
    }
    machineEnergy_[span.machine] += span.energyJ;
    totalEnergyJ_ += span.energyJ;
    reRank(span.request, before, entry.energyJ);
}

void
EnergyIndex::absorbClose(const trace::Span &span)
{
    PerRequest &entry = entryFor(span.request);
    if (entry.open > 0)
        --entry.open;
    if (openSpans_ > 0)
        --openSpans_;
    if (!entry.anyClosed || span.openedAt < entry.firstOpen)
        entry.firstOpen = span.openedAt;
    if (!entry.anyClosed || span.closedAt > entry.lastClose)
        entry.lastClose = span.closedAt;
    entry.anyClosed = true;
}

void
EnergyIndex::onSpanOpened(const trace::Span &span)
{
    util::LockGuard lock(mu_);
    absorbOpen(span);
}

void
EnergyIndex::onSpanClosed(const trace::Span &span)
{
    util::LockGuard lock(mu_);
    absorbClose(span);
}

void
EnergyIndex::onSpanCharged(const trace::Span &span,
                           util::Joules energy_delta,
                           double cpu_delta_ns)
{
    util::LockGuard lock(mu_);
    PerRequest &entry = entryFor(span.request);
    util::Joules before = entry.energyJ;
    entry.energyJ += energy_delta;
    entry.cpuTimeNs += cpu_delta_ns;
    auto slot = std::find_if(
        entry.machineEnergy.begin(), entry.machineEnergy.end(),
        [&span](const std::pair<int, util::Joules> &p) {
            return p.first == span.machine;
        });
    if (slot != entry.machineEnergy.end())
        slot->second += energy_delta;
    machineEnergy_[span.machine] += energy_delta;
    totalEnergyJ_ += energy_delta;
    reRank(span.request, before, entry.energyJ);
}

std::vector<os::RequestId>
EnergyIndex::requests() const
{
    util::LockGuard lock(mu_);
    std::vector<os::RequestId> out;
    out.reserve(requests_.size());
    for (const auto &kv : requests_)
        out.push_back(kv.first);
    return out;
}

std::vector<os::RequestId>
EnergyIndex::ranked() const
{
    util::LockGuard lock(mu_);
    std::vector<os::RequestId> out;
    out.reserve(ranking_.size());
    for (const RankKey &key : ranking_)
        out.push_back(key.id);
    return out;
}

std::vector<os::RequestId>
EnergyIndex::topRequests(std::size_t n) const
{
    util::LockGuard lock(mu_);
    std::vector<os::RequestId> out;
    for (const RankKey &key : ranking_) {
        if (out.size() >= n)
            break;
        out.push_back(key.id);
    }
    return out;
}

bool
EnergyIndex::known(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    return find(request) != nullptr;
}

RequestRollup
EnergyIndex::rollup(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    RequestRollup out;
    out.id = request;
    const PerRequest *entry = find(request);
    if (entry == nullptr)
        return out;
    out.rootName = entry->rootName;
    out.spanCount = entry->spans.size();
    out.openSpans = entry->open;
    out.energyJ = entry->energyJ;
    out.cpuTimeNs = entry->cpuTimeNs;
    out.machineCount = entry->machineEnergy.size();
    out.wall = entry->anyClosed ? entry->lastClose - entry->firstOpen
                                : 0;
    return out;
}

util::Joules
EnergyIndex::requestEnergyJ(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    const PerRequest *entry = find(request);
    return entry != nullptr ? entry->energyJ : util::Joules{0};
}

util::Watts
EnergyIndex::requestAvgPowerW(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    const PerRequest *entry = find(request);
    if (entry == nullptr || entry->cpuTimeNs <= 0)
        return util::Watts{0};
    return entry->energyJ / util::SimSeconds(entry->cpuTimeNs * 1e-9);
}

sim::SimTime
EnergyIndex::requestWall(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    const PerRequest *entry = find(request);
    if (entry == nullptr || !entry->anyClosed)
        return 0;
    return entry->lastClose - entry->firstOpen;
}

std::vector<trace::SpanId>
EnergyIndex::requestSpans(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    const PerRequest *entry = find(request);
    return entry != nullptr ? entry->spans
                            : std::vector<trace::SpanId>{};
}

std::string
EnergyIndex::rootName(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    const PerRequest *entry = find(request);
    return entry != nullptr ? entry->rootName : "?";
}

util::Joules
EnergyIndex::machineEnergyJ(os::RequestId request, int machine) const
{
    util::LockGuard lock(mu_);
    const PerRequest *entry = find(request);
    if (entry == nullptr)
        return util::Joules{0};
    for (const auto &slot : entry->machineEnergy)
        if (slot.first == machine)
            return slot.second;
    return util::Joules{0};
}

std::vector<int>
EnergyIndex::machines() const
{
    util::LockGuard lock(mu_);
    std::vector<int> out;
    out.reserve(machineEnergy_.size());
    for (const auto &kv : machineEnergy_)
        out.push_back(kv.first);
    return out;
}

util::Joules
EnergyIndex::machineTotalEnergyJ(int machine) const
{
    util::LockGuard lock(mu_);
    auto it = machineEnergy_.find(machine);
    return it == machineEnergy_.end() ? util::Joules{0} : it->second;
}

util::Joules
EnergyIndex::totalEnergyJ() const
{
    util::LockGuard lock(mu_);
    return totalEnergyJ_;
}

std::size_t
EnergyIndex::spanCount() const
{
    util::LockGuard lock(mu_);
    return spanCount_;
}

std::size_t
EnergyIndex::openSpanCount() const
{
    util::LockGuard lock(mu_);
    return openSpans_;
}

std::vector<QuotaHeadroom>
EnergyIndex::quotaHeadroom(
    const std::map<std::string, double> &budget_j_by_type,
    double default_budget_j) const
{
    util::LockGuard lock(mu_);
    std::vector<QuotaHeadroom> out;
    out.reserve(requests_.size());
    for (const auto &kv : requests_) {
        QuotaHeadroom row;
        row.id = kv.first;
        row.type = kv.second.rootName;
        row.usedJ = kv.second.energyJ;
        auto it = budget_j_by_type.find(row.type);
        double budget = it != budget_j_by_type.end()
                            ? it->second
                            : default_budget_j;
        row.budgetJ = util::Joules(budget);
        if (budget > 0) {
            row.headroomJ = row.budgetJ - row.usedJ;
            row.overBudget = row.usedJ > row.budgetJ;
        }
        out.push_back(row);
    }
    return out;
}

} // namespace obs
} // namespace pcon
