/**
 * @file
 * Energy-report rendering over an obs::EnergyIndex — the library
 * behind `tools/trace_report`, relocated from src/trace/report.cc so
 * the same queries are answerable online. Ranking, rollups, and
 * machine splits come from the index's incrementally maintained
 * state; per-span detail (stage rows, critical paths) reads through
 * the attached collector. All output is deterministic text; over a
 * freshly attached index the bytes are identical to what the old
 * collector-scanning report produced (pinned by golden fixtures).
 */

#ifndef PCON_OBS_REPORT_H
#define PCON_OBS_REPORT_H

#include <cstddef>
#include <string>

#include "obs/energy_index.h"

namespace pcon {
namespace obs {

/** What fullReport() prints. */
struct ReportOptions
{
    /** Requests listed in the ranking (and detailed below it). */
    std::size_t topN = 5;
    /** Include the per-stage breakdown of each listed request. */
    bool stageBreakdown = true;
    /** Include the critical path of each listed request. */
    bool criticalPath = true;
    /** Include the cross-machine energy imbalance table. */
    bool machineImbalance = true;
};

/**
 * Requests ranked by attributed energy, descending (ties to the
 * smaller id): rank, request id, root name, span count, machine
 * count, total energy, wall time. Pure over the index rollups —
 * works detached.
 */
std::string reportTopRequests(const EnergyIndex &index,
                              std::size_t top_n);

/**
 * Per-span table of one request (id order): kind, machine, name,
 * energy, average power, on-CPU time, I/O bytes, plus a totals row
 * that reproduces the request's ledger sum. Needs the attached
 * collector for span fields (panics when detached).
 */
std::string reportStageBreakdown(const EnergyIndex &index,
                                 os::RequestId request);

/** Root-to-last-close chain of one request with per-hop timing.
 * Needs the attached collector (panics when detached). */
std::string reportCriticalPath(const EnergyIndex &index,
                               os::RequestId request);

/**
 * Per-request energy split across machines with the dominant
 * machine's share — the cross-machine imbalance view for the
 * heterogeneous-cluster workload. Pure over the index rollups.
 */
std::string reportMachineImbalance(const EnergyIndex &index);

/** The full report per `opts`. */
std::string fullReport(const EnergyIndex &index,
                       const ReportOptions &opts = {});

/**
 * The full report as a machine-readable JSON document (schema
 * "pcon-trace-report-v1"): per-request summaries in energy rank
 * order with stage breakdowns and critical paths, plus the machine
 * imbalance table, honoring the same `opts` toggles as fullReport().
 * Numeric fields use the text report's fixed precisions (energy
 * 1e-6 J, times 1e-3 ms, power 1e-3 W), so the document is
 * deterministic for a given dump.
 */
std::string reportJson(const EnergyIndex &index,
                       const ReportOptions &opts = {});

} // namespace obs
} // namespace pcon

#endif // PCON_OBS_REPORT_H
