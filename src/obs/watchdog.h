/**
 * @file
 * SLO and anomaly watchdogs, evaluated on sampler ticks. A
 * WatchdogSet registers itself as a registry collector, so every
 * telemetry::Sampler snapshot (registry.collect()) runs one
 * evaluation pass over whatever the set was told to watch:
 *
 *  - power-cap violation duration: containers whose modeled power
 *    stays above the cap for longer than the grace window;
 *  - attribution drift: container-accounted active energy versus the
 *    machine's ground-truth active energy (the Figure 8 validation,
 *    continuously);
 *  - recalibration health: refitsRejected / lowConfidenceAlignments
 *    advancing after warmup (SmartWatts-style self-reported model
 *    confidence);
 *  - stuck counters: progress probes (e.g. meter deliveries) that
 *    stop advancing for consecutive ticks — a meter outage trips
 *    this long before any model statistic notices;
 *  - power anomalies: a core::PowerAnomalyDetector scanned every
 *    tick, its detections journaled as alerts;
 *  - injected-fault visibility: `fault.*` registry counters polled
 *    for movement, journaled as fault records (not alerts).
 *
 * Every firing appends a journal record and bumps an `obs.*` registry
 * metric. The canonical FaultPlan must trip the outage (stuck
 * counter) and recalibration watchdogs; a fault-free run must stay
 * alert-silent — both pinned by tests/obs/watchdog_fault_test.cc.
 */

#ifndef PCON_OBS_WATCHDOG_H
#define PCON_OBS_WATCHDOG_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/anomaly.h"
#include "core/container_manager.h"
#include "core/recalibration.h"
#include "hw/power_meter.h"
#include "obs/journal.h"
#include "telemetry/registry.h"

namespace pcon {
namespace obs {

/** Watchdog thresholds. */
struct WatchdogConfig
{
    /** Per-container modeled power cap (0 disables). */
    util::Watts powerCapW{0};
    /** How long a container may sit above the cap before alerting. */
    sim::SimTime capViolationAfter = sim::msec(50);
    /** Relative accounted-vs-truth active energy error that alerts. */
    double driftAlertFraction = 0.5;
    /** Window the drift comparison needs before it is meaningful. */
    sim::SimTime driftWarmup = sim::msec(500);
    /** Ignore recalibration-health movement before this sim time
     * (cold starts legitimately produce low-confidence scans). */
    sim::SimTime recalWarmup = sim::sec(1);
    /** Consecutive no-progress ticks before a probe is stuck. */
    std::size_t stuckAfterTicks = 16;
};

/**
 * The watchdog evaluator. Construct with the journal and registry,
 * point it at the subsystems to watch, then installCollector() so
 * sampler ticks drive it (or call evaluate() directly from tests).
 * Evaluation order is fixed (cap, drift, recalibration, stuck
 * probes, anomalies, faults) so journal output is deterministic.
 */
class WatchdogSet
{
  public:
    WatchdogSet(Journal &journal, telemetry::Registry &registry,
                os::Kernel &kernel, const WatchdogConfig &cfg = {});

    WatchdogSet(const WatchdogSet &) = delete;
    WatchdogSet &operator=(const WatchdogSet &) = delete;

    /** Watch container power against the cap (needs cfg.powerCapW). */
    void watchContainers(core::ContainerManager &manager);

    /**
     * Watch container-accounted energy against the machine's
     * ground-truth active energy, from now onward. Implies
     * watchContainers' manager wiring.
     */
    void watchGroundTruth(core::ContainerManager &manager,
                          hw::Machine &machine);

    /** Watch refit/alignment health counters for movement. */
    void watchRecalibration(core::OnlineRecalibrator &recalibrator);

    /** Stuck-counter probe over meter deliveries ("meter_delivery"). */
    void watchMeterDelivery(hw::PowerMeter &meter);

    /**
     * Generic progress probe: `probe` must advance between ticks once
     * it has moved at all; cfg.stuckAfterTicks static ticks alert.
     */
    void addProgressProbe(const std::string &name,
                          std::function<std::uint64_t()> probe);

    /** Scan a power-anomaly detector each tick, journaling hits. */
    void watchAnomalies(core::PowerAnomalyDetector &detector);

    /** Register the registry collector driving evaluate() on every
     * snapshot. Call once. */
    void installCollector();

    /** Run one evaluation pass now (what sampler ticks invoke). */
    void evaluate();

    /** Evaluation passes run. */
    std::uint64_t evaluations() const { return evaluations_; }

    /** Alerts fired across all watchdogs. */
    std::uint64_t alertsFired() const { return alertsFired_; }

  private:
    struct CapState
    {
        /** When the container first exceeded the cap this episode. */
        sim::SimTime since = 0;
        bool alerted = false;
    };

    struct Probe
    {
        std::string name;
        std::function<std::uint64_t()> fn;
        std::uint64_t last = 0;
        /** The probe has advanced at least once (armed). */
        bool moved = false;
        std::size_t staleTicks = 0;
        bool alerted = false;
    };

    void alert(const std::string &what, const std::string &detail,
               os::RequestId container, double value,
               telemetry::Counter &family);
    void checkCaps(sim::SimTime now);
    void checkDrift(sim::SimTime now);
    void checkRecalibration(sim::SimTime now);
    void checkProbes(sim::SimTime now);
    void checkAnomalies(sim::SimTime now);
    void checkFaultCounters(sim::SimTime now);
    std::uint64_t faultCounterSum() const;

    Journal &journal_;
    telemetry::Registry &registry_;
    // Watchdogs probe shard state from their own periodic events;
    // under the PDES engine those events pin to the owning shard's
    // thread (or a barrier).
    // pcon-lint: allow(shard-escape) probed from shard-pinned watchdog events
    os::Kernel &kernel_;
    WatchdogConfig cfg_;

    core::ContainerManager *manager_ = nullptr;  // pcon-lint: allow(shard-escape) see kernel_ above
    hw::Machine *machine_ = nullptr;  // pcon-lint: allow(shard-escape) see kernel_ above
    core::OnlineRecalibrator *recalibrator_ = nullptr;  // pcon-lint: allow(shard-escape) see kernel_ above
    core::PowerAnomalyDetector *anomalies_ = nullptr;  // pcon-lint: allow(shard-escape) see kernel_ above

    /** Drift baseline captured by watchGroundTruth. */
    sim::SimTime driftStart_ = 0;
    util::Joules driftStartTruthJ_{0};
    util::Joules driftStartAccountedJ_{0};
    bool driftAlerted_ = false;

    std::uint64_t lastRefitsRejected_ = 0;
    std::uint64_t lastLowConfidence_ = 0;

    std::map<os::RequestId, CapState> capStates_;
    std::vector<Probe> probes_;
    std::uint64_t lastFaultSum_ = 0;
    bool faultBaselineTaken_ = false;

    std::uint64_t evaluations_ = 0;
    std::uint64_t alertsFired_ = 0;

    telemetry::Counter &evaluationsTotal_;
    telemetry::Counter &alertsTotal_;
    telemetry::Counter &capAlertsTotal_;
    telemetry::Counter &driftAlertsTotal_;
    telemetry::Counter &recalAlertsTotal_;
    telemetry::Counter &stuckAlertsTotal_;
    telemetry::Counter &anomalyAlertsTotal_;
    telemetry::Counter &faultRecordsTotal_;
    telemetry::Gauge &capOverGauge_;
    telemetry::Gauge &driftFractionGauge_;
    telemetry::Gauge &journalRecordsGauge_;
    telemetry::Gauge &journalDroppedGauge_;
};

} // namespace obs
} // namespace pcon

#endif // PCON_OBS_WATCHDOG_H
