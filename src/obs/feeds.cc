#include "feeds.h"

#include <string>

#include "os/task.h"

namespace pcon {
namespace obs {

void
JournalHooks::onContextRebind(os::Task &task, os::RequestId old_ctx,
                              os::RequestId new_ctx)
{
    journal_.append(RecordKind::Rebind, Severity::Info,
                    kernel_.simulation().now(), new_ctx, new_ctx,
                    "rebind",
                    "task " + task.name + " ctx " +
                        std::to_string(old_ctx) + " to " +
                        std::to_string(new_ctx),
                    static_cast<double>(new_ctx));
}

void
JournalHooks::onActuation(int core, int duty_level, int pstate)
{
    journal_.append(RecordKind::Throttle, Severity::Info,
                    kernel_.simulation().now(), os::NoRequest,
                    os::NoRequest, "actuation",
                    "core " + std::to_string(core) + " duty " +
                        std::to_string(duty_level) + " pstate " +
                        std::to_string(pstate),
                    static_cast<double>(duty_level));
}

void
journalRefits(Journal &journal,
              core::OnlineRecalibrator &recalibrator)
{
    recalibrator.onRefit(
        [&journal](const core::OnlineRecalibrator::RefitEvent &ev) {
            journal.append(RecordKind::Refit, Severity::Info, ev.time,
                           os::NoRequest, os::NoRequest, "refit",
                           "refit " + std::to_string(ev.index) +
                               " from " +
                               std::to_string(ev.onlineSamples) +
                               " online samples",
                           static_cast<double>(ev.onlineSamples));
        });
}

void
exportJournalToPerfetto(const Journal &journal,
                        telemetry::PerfettoExporter &exporter)
{
    for (const JournalRecord &r : journal.snapshot()) {
        std::string label = std::string(severityName(r.severity)) +
            " " + recordKindName(r.kind) + " " + r.what;
        exporter.noteJournal(r.at, label, r.value);
    }
}

} // namespace obs
} // namespace pcon
