/**
 * @file
 * Structured event journal: a bounded, arena-backed ring of typed
 * records (cap throttles, context rebinds, model refits, injected
 * faults, watchdog alerts) with severity, simulated timestamp, and
 * container/request ids. The journal is the "what happened and when"
 * companion to the registry's "how much": counters say a watchdog
 * fired three times, the journal says which container, at what sim
 * time, and why. Rendering is byte-stable JSONL (one record per
 * line, fixed field order and precision) plus a Perfetto "journal"
 * instant track (obs/feeds.h), so two identical runs produce
 * identical bytes.
 *
 * Records are fixed-size and trivially destructible; the ring is
 * carved from a util::SlabArena at construction and never grows, so
 * steady-state appends touch no allocator and the oldest records are
 * overwritten once the ring wraps (dropped() counts the overwrites).
 */

#ifndef PCON_OBS_JOURNAL_H
#define PCON_OBS_JOURNAL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "os/request_context.h"
#include "sim/time.h"
#include "util/slab_arena.h"
#include "util/sync.h"

namespace pcon {
namespace obs {

/** How urgent a journal record is. */
enum class Severity
{
    Info,
    Warn,
    Error,
};

/** Stable lower-case severity name ("info", "warn", "error"). */
const char *severityName(Severity severity);

/** What family of event a record describes. */
enum class RecordKind
{
    /** A power-cap actuation (duty/P-state write). */
    Throttle,
    /** A task's request binding changed. */
    Rebind,
    /** The online recalibrator refit the model. */
    Refit,
    /** Injected fault activity (fault.* counter movement). */
    Fault,
    /** A watchdog fired. */
    Alert,
};

/** Stable lower-case kind name ("throttle", "rebind", ...). */
const char *recordKindName(RecordKind kind);

/**
 * One journal entry. Fixed-size (fixed char buffers, no heap) so the
 * ring slots are trivially destructible arena storage.
 */
struct JournalRecord
{
    /** Monotone sequence number across the journal's lifetime. */
    std::uint64_t seq = 0;
    /** Simulated time of the event. */
    sim::SimTime at = 0;
    RecordKind kind = RecordKind::Alert;
    Severity severity = Severity::Info;
    /** Container the event concerns (os::NoRequest when none). */
    os::RequestId container = os::NoRequest;
    /** Request the event concerns (os::NoRequest when none). */
    os::RequestId request = os::NoRequest;
    /** Numeric payload (watts, duty level, counter delta, ...). */
    double value = 0;
    /** Short machine-oriented label ("power_cap", "refit", ...). */
    char what[32] = {};
    /** Free-form human detail; truncated to fit. */
    char detail[96] = {};
};

static_assert(std::is_trivially_destructible<JournalRecord>::value,
              "ring slots are arena storage; no destructors run");

/**
 * The bounded journal. All appends and reads are mutex-guarded, so
 * kernel hooks, watchdogs, and exporters on different shards can
 * share one journal.
 */
class Journal
{
  public:
    /** Default ring capacity (records retained). */
    static constexpr std::size_t kDefaultCapacity = 1024;

    explicit Journal(std::size_t capacity = kDefaultCapacity);

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Append one record; `what` and `detail` are truncated to the
     * record's fixed buffers. Overwrites the oldest record once the
     * ring is full.
     */
    void append(RecordKind kind, Severity severity, sim::SimTime at,
                os::RequestId container, os::RequestId request,
                const std::string &what, const std::string &detail,
                double value = 0);

    /** Retained records, oldest first (seq order). */
    std::vector<JournalRecord> snapshot() const;

    /**
     * Byte-stable JSONL: one record per line, oldest first, fixed
     * field order (seq, t_ms, kind, severity, container, request,
     * what, detail, value) and fixed precision (t_ms %.3f, value
     * %.6f). Empty string when no records were retained.
     */
    std::string jsonl() const;

    /** Write jsonl() to a file (fatal on open failure). */
    void writeJsonl(const std::string &path) const;

    /** Ring capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Records currently retained (<= capacity). */
    std::size_t size() const;

    /** Records ever appended. */
    std::uint64_t totalAppended() const;

    /** Records overwritten after the ring wrapped. */
    std::uint64_t dropped() const;

    /** Appends seen with the given severity (includes dropped). */
    std::uint64_t countBySeverity(Severity severity) const;

    /** Appends seen with the given kind (includes dropped). */
    std::uint64_t countByKind(RecordKind kind) const;

    /** Drop every retained record (counts keep accumulating). */
    void clear();

  private:
    /** Backing storage for the ring slots. */
    // pcon-lint: shard-local(written only in the constructor)
    util::SlabArena arena_;
    /** Ring capacity; immutable after construction. */
    // pcon-lint: shard-local(set in the ctor, read-only afterwards)
    std::size_t capacity_;

    mutable util::Mutex mu_;
    JournalRecord *ring_ PCON_GUARDED_BY(mu_) = nullptr;
    /** Records ever appended; head slot is total_ % capacity_. */
    std::uint64_t total_ PCON_GUARDED_BY(mu_) = 0;
    /** Retained count (== min(total_, capacity_) unless cleared). */
    std::size_t live_ PCON_GUARDED_BY(mu_) = 0;
    std::uint64_t bySeverity_[3] PCON_GUARDED_BY(mu_) = {};
    std::uint64_t byKind_[5] PCON_GUARDED_BY(mu_) = {};
};

} // namespace obs
} // namespace pcon

#endif // PCON_OBS_JOURNAL_H
