/**
 * @file
 * Journal feeds: the wiring that turns facility activity into
 * journal records. JournalHooks is a KernelHooks implementation
 * recording context rebinds and power actuations (throttles);
 * journalRefits() subscribes a journal to the recalibrator's refit
 * events; exportJournalToPerfetto() renders the retained records as
 * instants on the Perfetto "journal" track (pid 6), which appears
 * only when the journal was used.
 */

#ifndef PCON_OBS_FEEDS_H
#define PCON_OBS_FEEDS_H

#include "core/recalibration.h"
#include "obs/journal.h"
#include "os/hooks.h"
#include "os/kernel.h"
#include "telemetry/perfetto.h"

namespace pcon {
namespace obs {

/**
 * Kernel-event journal feed. Register with kernel.addHooks(); every
 * context rebind and actuator write becomes an Info record. The
 * bounded ring keeps the cost flat no matter how chatty the kernel
 * is.
 */
class JournalHooks : public os::KernelHooks
{
  public:
    JournalHooks(Journal &journal, os::Kernel &kernel)
        : journal_(journal), kernel_(kernel)
    {
    }

    void onContextRebind(os::Task &task, os::RequestId old_ctx,
                         os::RequestId new_ctx) override;
    void onActuation(int core, int duty_level, int pstate) override;

  private:
    Journal &journal_;
    os::Kernel &kernel_;
};

/**
 * Subscribe `journal` to completed refits: each RefitEvent becomes
 * an Info record ("refit", value = online samples used).
 */
void journalRefits(Journal &journal,
                   core::OnlineRecalibrator &recalibrator);

/**
 * Render every retained record as an instant on the exporter's
 * "journal" track. Call after the run (record timestamps are used,
 * not the current sim time).
 */
void exportJournalToPerfetto(const Journal &journal,
                             telemetry::PerfettoExporter &exporter);

} // namespace obs
} // namespace pcon

#endif // PCON_OBS_FEEDS_H
