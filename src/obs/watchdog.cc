#include "watchdog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "os/kernel.h"

namespace pcon {
namespace obs {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace

WatchdogSet::WatchdogSet(Journal &journal,
                         telemetry::Registry &registry,
                         os::Kernel &kernel,
                         const WatchdogConfig &cfg)
    : journal_(journal), registry_(registry), kernel_(kernel),
      cfg_(cfg),
      evaluationsTotal_(
          registry.counter("obs.watchdog.evaluations_total")),
      alertsTotal_(registry.counter("obs.watchdog.alerts_total")),
      capAlertsTotal_(
          registry.counter("obs.watchdog.cap_alerts_total")),
      driftAlertsTotal_(
          registry.counter("obs.watchdog.drift_alerts_total")),
      recalAlertsTotal_(
          registry.counter("obs.watchdog.recal_alerts_total")),
      stuckAlertsTotal_(
          registry.counter("obs.watchdog.stuck_alerts_total")),
      anomalyAlertsTotal_(
          registry.counter("obs.watchdog.anomaly_alerts_total")),
      faultRecordsTotal_(
          registry.counter("obs.journal.fault_records_total")),
      capOverGauge_(
          registry.gauge("obs.watchdog.cap_over_containers")),
      driftFractionGauge_(
          registry.gauge("obs.watchdog.drift_fraction")),
      journalRecordsGauge_(registry.gauge("obs.journal.records")),
      journalDroppedGauge_(registry.gauge("obs.journal.dropped"))
{
}

void
WatchdogSet::watchContainers(core::ContainerManager &manager)
{
    manager_ = &manager;
}

void
WatchdogSet::watchGroundTruth(core::ContainerManager &manager,
                              hw::Machine &machine)
{
    manager_ = &manager;
    machine_ = &machine;
    driftStart_ = kernel_.simulation().now();
    driftStartTruthJ_ = machine.machineEnergyJ();
    driftStartAccountedJ_ = manager.accountedEnergyJ();
    driftAlerted_ = false;
}

void
WatchdogSet::watchRecalibration(core::OnlineRecalibrator &recalibrator)
{
    recalibrator_ = &recalibrator;
    lastRefitsRejected_ = recalibrator.refitsRejected();
    lastLowConfidence_ = recalibrator.lowConfidenceAlignments();
}

void
WatchdogSet::watchMeterDelivery(hw::PowerMeter &meter)
{
    addProgressProbe("meter_delivery", [&meter]() {
        const std::deque<hw::PowerMeter::Sample> &h = meter.history();
        // Pair count with the last delivery time so a trimHistory()
        // cannot masquerade as progress (or mask a stall).
        std::uint64_t stamp = static_cast<std::uint64_t>(h.size());
        if (!h.empty())
            stamp += static_cast<std::uint64_t>(h.back().deliveredAt);
        return stamp;
    });
}

void
WatchdogSet::addProgressProbe(const std::string &name,
                              std::function<std::uint64_t()> probe)
{
    Probe p;
    p.name = name;
    p.fn = std::move(probe);
    p.last = p.fn();
    probes_.push_back(std::move(p));
}

void
WatchdogSet::watchAnomalies(core::PowerAnomalyDetector &detector)
{
    anomalies_ = &detector;
}

void
WatchdogSet::installCollector()
{
    registry_.addCollector([this]() { evaluate(); });
}

void
WatchdogSet::alert(const std::string &what, const std::string &detail,
                   os::RequestId container, double value,
                   telemetry::Counter &family)
{
    journal_.append(RecordKind::Alert, Severity::Error,
                    kernel_.simulation().now(), container, container,
                    what, detail, value);
    family.add();
    alertsTotal_.add();
    ++alertsFired_;
}

void
WatchdogSet::checkCaps(sim::SimTime now)
{
    if (manager_ == nullptr || cfg_.powerCapW.value() <= 0) {
        capOverGauge_.set(0);
        return;
    }
    // Sorted id order: live() is an unordered map, and journal bytes
    // must not depend on hash order.
    std::vector<os::RequestId> ids;
    ids.reserve(manager_->live().size());
    for (const auto &kv : manager_->live())
        ids.push_back(kv.first);
    std::sort(ids.begin(), ids.end());

    std::size_t over = 0;
    for (os::RequestId id : ids) {
        core::PowerContainer *c = manager_->container(id);
        if (c == nullptr)
            continue;
        double w = c->lastPowerW().value();
        if (w <= cfg_.powerCapW.value()) {
            capStates_.erase(id);
            continue;
        }
        ++over;
        CapState &state = capStates_[id];
        if (state.since == 0)
            state.since = now;
        if (!state.alerted &&
            now - state.since >= cfg_.capViolationAfter) {
            state.alerted = true;
            alert("power_cap",
                  "container " + std::to_string(id) + " (" +
                      c->type() + ") " + fmt("%.3f", w) +
                      " W over cap " +
                      fmt("%.3f", cfg_.powerCapW.value()) +
                      " W",
                  id, w, capAlertsTotal_);
        }
    }
    // Containers that completed mid-episode leave stale state behind.
    for (auto it = capStates_.begin(); it != capStates_.end();) {
        if (manager_->container(it->first) == nullptr)
            it = capStates_.erase(it);
        else
            ++it;
    }
    capOverGauge_.set(static_cast<double>(over));
}

void
WatchdogSet::checkDrift(sim::SimTime now)
{
    if (manager_ == nullptr || machine_ == nullptr)
        return;
    sim::SimTime span = now - driftStart_;
    if (span < cfg_.driftWarmup)
        return;
    double span_s = sim::toSeconds(span);
    double truth_active =
        (machine_->machineEnergyJ() - driftStartTruthJ_).value() -
        machine_->config().truth.machineIdleW * span_s;
    if (truth_active <= 0)
        return;
    double accounted =
        (manager_->accountedEnergyJ() - driftStartAccountedJ_)
            .value();
    double fraction =
        std::abs(accounted - truth_active) / truth_active;
    driftFractionGauge_.set(fraction);
    if (!driftAlerted_ && fraction > cfg_.driftAlertFraction) {
        driftAlerted_ = true;
        alert("attribution_drift",
              "accounted " + fmt("%.3f", accounted) +
                  " J vs ground-truth active " +
                  fmt("%.3f", truth_active) + " J (error " +
                  fmt("%.3f", fraction) + ")",
              os::NoRequest, fraction, driftAlertsTotal_);
    }
}

void
WatchdogSet::checkRecalibration(sim::SimTime now)
{
    if (recalibrator_ == nullptr)
        return;
    std::uint64_t rejected = recalibrator_->refitsRejected();
    std::uint64_t lowconf = recalibrator_->lowConfidenceAlignments();
    std::uint64_t d_rejected = rejected - lastRefitsRejected_;
    std::uint64_t d_lowconf = lowconf - lastLowConfidence_;
    lastRefitsRejected_ = rejected;
    lastLowConfidence_ = lowconf;
    if (now < cfg_.recalWarmup)
        return;
    if (d_rejected == 0 && d_lowconf == 0)
        return;
    alert("recalibration_health",
          "refits_rejected +" + std::to_string(d_rejected) +
              " low_confidence_alignments +" +
              std::to_string(d_lowconf),
          os::NoRequest,
          static_cast<double>(d_rejected + d_lowconf),
          recalAlertsTotal_);
}

void
WatchdogSet::checkProbes(sim::SimTime now)
{
    (void)now;
    for (Probe &p : probes_) {
        std::uint64_t v = p.fn();
        if (v != p.last) {
            p.last = v;
            p.moved = true;
            p.staleTicks = 0;
            p.alerted = false;
            continue;
        }
        if (!p.moved)
            continue; // never started; nothing to stall
        ++p.staleTicks;
        if (!p.alerted && p.staleTicks >= cfg_.stuckAfterTicks) {
            p.alerted = true;
            alert("stuck_counter",
                  p.name + " static for " +
                      std::to_string(p.staleTicks) + " ticks",
                  os::NoRequest, static_cast<double>(p.staleTicks),
                  stuckAlertsTotal_);
        }
    }
}

void
WatchdogSet::checkAnomalies(sim::SimTime now)
{
    if (anomalies_ == nullptr)
        return;
    for (const core::PowerAnomaly &a : anomalies_->scan()) {
        journal_.append(
            RecordKind::Alert, Severity::Warn, now, a.id, a.id,
            "power_anomaly",
            a.type + " mean " + fmt("%.3f", a.meanPowerW.value()) +
                " W vs fleet " + fmt("%.3f", a.fleetMeanW) + " W" +
                (a.live ? " (live)" : ""),
            a.meanPowerW.value());
        anomalyAlertsTotal_.add();
        alertsTotal_.add();
        ++alertsFired_;
    }
}

std::uint64_t
WatchdogSet::faultCounterSum() const
{
    std::uint64_t sum = 0;
    for (const telemetry::Registry::Entry &e : registry_.entries()) {
        if (e.kind != telemetry::InstrumentKind::Counter)
            continue;
        if (e.name.rfind("fault.", 0) == 0)
            sum += e.counter->value();
    }
    return sum;
}

void
WatchdogSet::checkFaultCounters(sim::SimTime now)
{
    std::uint64_t sum = faultCounterSum();
    if (!faultBaselineTaken_) {
        faultBaselineTaken_ = true;
        lastFaultSum_ = sum;
        return;
    }
    if (sum == lastFaultSum_)
        return;
    std::uint64_t delta = sum - lastFaultSum_;
    lastFaultSum_ = sum;
    journal_.append(RecordKind::Fault, Severity::Warn, now,
                    os::NoRequest, os::NoRequest, "fault_injection",
                    "fault.* counters advanced by " +
                        std::to_string(delta),
                    static_cast<double>(delta));
    faultRecordsTotal_.add();
}

void
WatchdogSet::evaluate()
{
    sim::SimTime now = kernel_.simulation().now();
    ++evaluations_;
    evaluationsTotal_.add();
    checkCaps(now);
    checkDrift(now);
    checkRecalibration(now);
    checkProbes(now);
    checkAnomalies(now);
    checkFaultCounters(now);
    journalRecordsGauge_.set(
        static_cast<double>(journal_.totalAppended()));
    journalDroppedGauge_.set(static_cast<double>(journal_.dropped()));
}

} // namespace obs
} // namespace pcon
