/**
 * @file
 * Incremental energy-query indices — the live half of the trace
 * analysis that used to run only at exit. An EnergyIndex subscribes
 * to a trace::SpanCollector as its SpanObserver and folds every
 * open/charge/close into per-request and per-machine rollups, a
 * ranking ordered by attributed energy, and quota-headroom views, so
 * any query is O(answer) at any simulated time instead of O(trace)
 * after the run. tools/trace_report is a thin CLI over this library
 * (obs/report.h); the same index answers the same questions online.
 *
 * Rebuild parity: attach() absorbs already-recorded spans in id
 * order, which performs the exact floating-point additions the
 * collector's own O(trace) queries perform — so a report rendered
 * over a freshly attached index is byte-identical to one computed
 * from the collector directly (pinned by the golden fixtures).
 */

#ifndef PCON_OBS_ENERGY_INDEX_H
#define PCON_OBS_ENERGY_INDEX_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "os/request_context.h"
#include "sim/time.h"
#include "trace/span.h"
#include "util/sync.h"
#include "util/units.h"

namespace pcon {
namespace obs {

/** Per-request rollup snapshot (values at query time). */
struct RequestRollup
{
    os::RequestId id = os::NoRequest;
    /** Root span name; "?" until a root span is recorded. */
    std::string rootName = "?";
    /** Spans recorded for the request (open + closed). */
    std::size_t spanCount = 0;
    /** Spans still open. */
    std::size_t openSpans = 0;
    /** Total attributed energy. */
    util::Joules energyJ{0};
    /** Total attributed on-CPU time, nanoseconds. */
    double cpuTimeNs = 0;
    /** Distinct machines the request's spans executed on. */
    std::size_t machineCount = 0;
    /** First-open to last-close envelope over closed spans. */
    sim::SimTime wall = 0;
};

/** One row of the quota-headroom view. */
struct QuotaHeadroom
{
    os::RequestId id = os::NoRequest;
    /** Request type (root span name). */
    std::string type;
    util::Joules usedJ{0};
    /** Budget applied (<= 0 means unlimited). */
    util::Joules budgetJ{0};
    /** budget - used; 0 when unlimited. */
    util::Joules headroomJ{0};
    bool overBudget = false;
};

/**
 * The incremental index. Attach to one collector (live tracing or a
 * reloaded dump); every query then reads maintained rollups under the
 * index's own mutex. Maintenance is O(log R) per span event (ranking
 * reinsertion), R = requests seen.
 *
 * Thread safety: observer callbacks arrive under the collector's
 * lock from whichever shard mutates a span; all index state is
 * guarded by mu_. The index never calls back into the collector from
 * a callback, so the only lock order is collector -> index.
 */
class EnergyIndex : public trace::SpanObserver
{
  public:
    EnergyIndex() = default;
    ~EnergyIndex() override;

    EnergyIndex(const EnergyIndex &) = delete;
    EnergyIndex &operator=(const EnergyIndex &) = delete;

    /**
     * Subscribe to `collector` and absorb its already-recorded spans
     * (id order — see the rebuild-parity note above). Detaches from
     * any previous collector first.
     */
    void attach(trace::SpanCollector &collector);

    /** Unsubscribe and drop all rollups. */
    void detach();

    /** The attached collector (nullptr when detached). Span detail
     * queries (stage fields, critical paths) read through it. */
    const trace::SpanCollector *collector() const;

    // --- queries (all O(answer), plus O(log R) lookups) ------------

    /** Requests with at least one span, ascending id. */
    std::vector<os::RequestId> requests() const;

    /** Requests ranked by energy desc, ties to the smaller id. */
    std::vector<os::RequestId> ranked() const;

    /** First `n` of ranked(). */
    std::vector<os::RequestId> topRequests(std::size_t n) const;

    /** True when the request has at least one span. */
    bool known(os::RequestId request) const;

    /** Full rollup of one request (zeros when unknown). */
    RequestRollup rollup(os::RequestId request) const;

    /** Total attributed energy of a request. */
    util::Joules requestEnergyJ(os::RequestId request) const;

    /** Energy over attributed on-CPU time (0 before any CPU time). */
    util::Watts requestAvgPowerW(os::RequestId request) const;

    /** Closed-span first-open to last-close envelope. */
    sim::SimTime requestWall(os::RequestId request) const;

    /** Span ids of a request, ascending. */
    std::vector<trace::SpanId> requestSpans(os::RequestId request) const;

    /** Root span name ("?" when the request has no root span). */
    std::string rootName(os::RequestId request) const;

    /** Energy of a request's spans on one machine. */
    util::Joules machineEnergyJ(os::RequestId request,
                                int machine) const;

    /** Machine indices seen across all spans, ascending. */
    std::vector<int> machines() const;

    /** Total attributed energy on one machine (all requests). */
    util::Joules machineTotalEnergyJ(int machine) const;

    /** Total attributed energy across every span. */
    util::Joules totalEnergyJ() const;

    /** Spans indexed so far. */
    std::size_t spanCount() const;

    /** Spans currently open. */
    std::size_t openSpanCount() const;

    /**
     * Energy-quota headroom of every known request, ascending id:
     * each request's attributed energy against its type's budget
     * (`budget_j_by_type`, falling back to `default_budget_j`;
     * <= 0 means unlimited). O(requests) — the "who is close to the
     * cap" view a conditioning policy polls online.
     */
    std::vector<QuotaHeadroom>
    quotaHeadroom(const std::map<std::string, double> &budget_j_by_type,
                  double default_budget_j = 0) const;

    // --- trace::SpanObserver ---------------------------------------
    void onSpanOpened(const trace::Span &span) override;
    void onSpanClosed(const trace::Span &span) override;
    void onSpanCharged(const trace::Span &span,
                       util::Joules energy_delta,
                       double cpu_delta_ns) override;

  private:
    struct PerRequest
    {
        std::string rootName;
        std::vector<trace::SpanId> spans;
        std::size_t open = 0;
        util::Joules energyJ{0};
        double cpuTimeNs = 0;
        /** (machine, energy), sorted by machine; small in practice. */
        std::vector<std::pair<int, util::Joules>> machineEnergy;
        bool anyClosed = false;
        sim::SimTime firstOpen = 0;
        sim::SimTime lastClose = 0;
    };

    /** Ranking key: energy desc, id asc. */
    struct RankKey
    {
        util::Joules energyJ{0};
        os::RequestId id = os::NoRequest;

        bool
        operator<(const RankKey &other) const
        {
            if (energyJ != other.energyJ)
                return energyJ > other.energyJ;
            return id < other.id;
        }
    };

    PerRequest &entryFor(os::RequestId request) PCON_REQUIRES(mu_);
    const PerRequest *find(os::RequestId request) const
        PCON_REQUIRES(mu_);
    void reRank(os::RequestId request, util::Joules old_energy,
                util::Joules new_energy) PCON_REQUIRES(mu_);
    void absorbOpen(const trace::Span &span) PCON_REQUIRES(mu_);
    void absorbClose(const trace::Span &span) PCON_REQUIRES(mu_);

    mutable util::Mutex mu_;
    trace::SpanCollector *collector_ PCON_GUARDED_BY(mu_) = nullptr;
    std::map<os::RequestId, PerRequest> requests_ PCON_GUARDED_BY(mu_);
    std::set<RankKey> ranking_ PCON_GUARDED_BY(mu_);
    std::map<int, util::Joules> machineEnergy_ PCON_GUARDED_BY(mu_);
    util::Joules totalEnergyJ_ PCON_GUARDED_BY(mu_){0};
    std::size_t spanCount_ PCON_GUARDED_BY(mu_) = 0;
    std::size_t openSpans_ PCON_GUARDED_BY(mu_) = 0;
};

} // namespace obs
} // namespace pcon

#endif // PCON_OBS_ENERGY_INDEX_H
