#include "machine.h"

#include <cmath>

#include "util/audit.h"
#include "util/logging.h"

namespace pcon {
namespace hw {

using util::fatalIf;
using util::panicIf;

Machine::Machine(sim::Simulation &simulation, const MachineConfig &cfg)
    : sim_(simulation), cfg_(cfg),
      cores_(static_cast<std::size_t>(cfg.totalCores())),
      chipActiveCacheW_(static_cast<std::size_t>(cfg.chips), 0.0),
      chipActiveCacheValid_(static_cast<std::size_t>(cfg.chips),
                            false),
      packageEnergyJ_(static_cast<std::size_t>(cfg.chips),
                      util::Joules(0)),
      lastSync_(simulation.now())
{
    fatalIf(cfg.chips <= 0 || cfg.coresPerChip <= 0,
            "machine needs at least one chip and core");
    fatalIf(cfg.freqGhz <= 0, "machine frequency must be positive");
    fatalIf(cfg.dutyDenom < 2, "duty denominator must be >= 2");
    fatalIf(cfg.pstates.empty() || cfg.pstates.front() != 1.0,
            "P-state table must start at ratio 1.0");
    for (double ratio : cfg.pstates)
        fatalIf(ratio <= 0.0 || ratio > 1.0,
                "P-state ratio out of (0, 1]: ", ratio);
    for (auto &core : cores_) {
        core.dutyLevel = cfg.dutyDenom;
        core.dutyFrac = 1.0;
    }
}

void
Machine::checkCore(int core) const
{
    panicIf(core < 0 || core >= totalCores(),
            "core index out of range: ", core);
}

void
Machine::checkChip(int chip) const
{
    panicIf(chip < 0 || chip >= cfg_.chips,
            "chip index out of range: ", chip);
}

void
Machine::setRunning(int core, const ActivityVector &activity)
{
    checkCore(core);
    sync();
    cores_[core].busy = true;
    cores_[core].activity = activity;
    invalidateChipPower(core);
}

void
Machine::setIdle(int core)
{
    checkCore(core);
    sync();
    cores_[core].busy = false;
    invalidateChipPower(core);
}

bool
Machine::isBusy(int core) const
{
    checkCore(core);
    return cores_[core].busy;
}

const ActivityVector &
Machine::activity(int core) const
{
    checkCore(core);
    panicIf(!cores_[core].busy, "activity() on an idle core");
    return cores_[core].activity;
}

void
Machine::setDutyLevel(int core, int level)
{
    checkCore(core);
    fatalIf(level < 1 || level > cfg_.dutyDenom,
            "duty level ", level, " out of 1..", cfg_.dutyDenom);
    sync();
    cores_[core].dutyLevel = level;
    cores_[core].dutyFrac = static_cast<double>(level) /
        static_cast<double>(cfg_.dutyDenom);
    invalidateChipPower(core);
}

int
Machine::dutyLevel(int core) const
{
    checkCore(core);
    return cores_[core].dutyLevel;
}

double
Machine::dutyFraction(int core) const
{
    checkCore(core);
    return cores_[core].dutyFrac;
}

double
Machine::workRateHz(int core) const
{
    checkCore(core);
    return cfg_.freqGhz * 1e9 * dutyFraction(core) *
        pstateRatio(core);
}

void
Machine::setPState(int core, int pstate)
{
    checkCore(core);
    fatalIf(pstate < 0 ||
                pstate >= static_cast<int>(cfg_.pstates.size()),
            "P-state ", pstate, " out of 0..",
            cfg_.pstates.size() - 1);
    sync();
    cores_[core].pstate = pstate;
    invalidateChipPower(core);
}

int
Machine::pstate(int core) const
{
    checkCore(core);
    return cores_[core].pstate;
}

double
Machine::pstateRatio(int core) const
{
    checkCore(core);
    return cfg_.pstates[cores_[core].pstate];
}

double
Machine::pstatePowerScale(double ratio)
{
    double voltage = 0.6 + 0.4 * ratio;
    return ratio * voltage * voltage;
}

CounterSnapshot
Machine::readCounters(int core)
{
    checkCore(core);
    sync();
    CounterSnapshot snapshot = cores_[core].counters;
    if (counterFaultHook_)
        counterFaultHook_(core, snapshot);
    return snapshot;
}

void
Machine::readCountersBatch(std::vector<CounterSnapshot> &out)
{
    sync();
    out.resize(cores_.size());
    for (std::size_t core = 0; core < cores_.size(); ++core) {
        out[core] = cores_[core].counters;
        if (counterFaultHook_)
            counterFaultHook_(static_cast<int>(core), out[core]);
    }
}

void
Machine::setCounterFaultHook(CounterFaultHook fn)
{
    counterFaultHook_ = std::move(fn);
}

void
Machine::injectCounterEvents(int core, const CounterSnapshot &extra)
{
    checkCore(core);
    sync();
    cores_[core].counters.accumulate(extra);
}

void
Machine::setDeviceBusy(DeviceKind kind, bool busy)
{
    sync();
    int &count = (kind == DeviceKind::Disk) ? diskBusy_ : netBusy_;
    count += busy ? 1 : -1;
    panicIf(count < 0, "device busy refcount underflow");
}

bool
Machine::deviceBusy(DeviceKind kind) const
{
    return (kind == DeviceKind::Disk ? diskBusy_ : netBusy_) > 0;
}

double
Machine::coreActiveW(const CoreState &core) const
{
    if (!core.busy)
        return 0.0;
    const GroundTruthParams &t = cfg_.truth;
    const ActivityVector &a = core.activity;
    double duty = core.dutyFrac;
    double linear = t.coreBusyW + a.ipc * t.insW +
        a.flopsPerCycle * t.flopW + a.llcPerCycle * t.llcW +
        a.memPerCycle * t.memW;
    double interaction = t.nlCacheMemW *
        (a.llcPerCycle / t.nlLlcNorm) * (a.memPerCycle / t.nlMemNorm);
    double dvfs = pstatePowerScale(cfg_.pstates[core.pstate]);
    return (linear + interaction) * duty * dvfs;
}

void
Machine::invalidateChipPower(int core)
{
    chipActiveCacheValid_[static_cast<std::size_t>(
        core / cfg_.coresPerChip)] = false;
}

double
Machine::chipActiveW(int chip) const
{
    if (chipActiveCacheValid_[chip])
        return chipActiveCacheW_[chip];
    // Recompute with the exact full-sum loop (never incrementally),
    // so the memoized value is bit-identical to an unmemoized one.
    // pcon-lint: allow(units) ground-truth internal; callers wrap in Watts
    double power = 0.0;
    bool any_busy = false;
    int first = chip * cfg_.coresPerChip;
    for (int c = first; c < first + cfg_.coresPerChip; ++c) {
        if (cores_[c].busy)
            any_busy = true;
        power += coreActiveW(cores_[c]);
    }
    if (any_busy)
        power += cfg_.truth.chipMaintenanceW;
    chipActiveCacheW_[chip] = power;
    chipActiveCacheValid_[chip] = true;
    return power;
}

util::Watts
Machine::devicePowerW() const
{
    util::Watts power{0};
    if (diskBusy_ > 0)
        power += util::Watts(cfg_.truth.diskActiveW);
    if (netBusy_ > 0)
        power += util::Watts(cfg_.truth.netActiveW);
    return power;
}

util::Watts
Machine::truePowerW() const
{
    return util::Watts(cfg_.truth.machineIdleW) + trueActivePowerW();
}

util::Watts
Machine::trueActivePowerW() const
{
    double active = devicePowerW().value();
    for (int chip = 0; chip < cfg_.chips; ++chip)
        active += chipActiveW(chip);
    return util::Watts(active);
}

util::Watts
Machine::truePackagePowerW(int chip) const
{
    checkChip(chip);
    return util::Watts(cfg_.truth.packageIdleW + chipActiveW(chip));
}

util::Joules
Machine::machineEnergyJ()
{
    sync();
    return machineEnergyJ_;
}

util::Joules
Machine::packageEnergyJ(int chip)
{
    checkChip(chip);
    sync();
    return packageEnergyJ_[chip];
}

util::Joules
Machine::deviceEnergyJ(DeviceKind kind)
{
    sync();
    return kind == DeviceKind::Disk ? diskEnergyJ_ : netEnergyJ_;
}

void
Machine::syncSlow()
{
    sim::SimTime now = sim_.now();
    panicIf(now < lastSync_, "machine clock went backwards");
    if (now == lastSync_)
        return;
    double dt_ns = static_cast<double>(now - lastSync_);
    double dt_s = dt_ns * 1e-9;

    // Counters: piecewise-constant activity over [lastSync_, now).
    // The elapsed reference advances at the nominal rate (invariant
    // TSC); non-halt cycles advance at the core's effective clock.
    double elapsed_cycles = cfg_.cyclesPerNs() * dt_ns;
    for (auto &core : cores_) {
        core.counters.elapsedCycles += elapsed_cycles;
        if (!core.busy)
            continue;
        double cycles = elapsed_cycles * core.dutyFrac *
            cfg_.pstates[core.pstate];
        core.counters.nonhaltCycles += cycles;
        core.counters.instructions += cycles * core.activity.ipc;
        core.counters.flops += cycles * core.activity.flopsPerCycle;
        core.counters.llcRefs += cycles * core.activity.llcPerCycle;
        core.counters.memTxns += cycles * core.activity.memPerCycle;
    }

    // Energy: integrate the ground-truth power over the interval.
    util::Watts power_w = truePowerW();
    util::SimSeconds dt(dt_s);
    PCON_AUDIT_MSG(std::isfinite(power_w.value()) &&
                       power_w.value() >= cfg_.truth.machineIdleW,
                   "ground-truth power ", power_w,
                   " W fell below the idle floor ",
                   cfg_.truth.machineIdleW, " W");
    machineEnergyJ_ += power_w * dt;
    for (int chip = 0; chip < cfg_.chips; ++chip)
        packageEnergyJ_[chip] += truePackagePowerW(chip) * dt;
    if (diskBusy_ > 0)
        diskEnergyJ_ += util::Watts(cfg_.truth.diskActiveW) * dt;
    if (netBusy_ > 0)
        netEnergyJ_ += util::Watts(cfg_.truth.netActiveW) * dt;
    PCON_AUDIT_MSG(std::isfinite(machineEnergyJ_.value()) &&
                       machineEnergyJ_.value() >= 0,
                   "cumulative machine energy corrupt: ",
                   machineEnergyJ_, " J");

    // Per-core rate bound: duty modulation and DVFS can only slow a
    // core, never push non-halt cycles past the elapsed reference
    // (injected observer events are the one sanctioned exception and
    // stay orders of magnitude below this slack).
    PCON_AUDIT_SLOW(
        [this] {
            for (const auto &core : cores_)
                if (core.counters.nonhaltCycles >
                    core.counters.elapsedCycles * 1.05 + 1e7)
                    return false;
            return true;
        }(),
        "a core's non-halt cycles outran its elapsed reference");

    lastSync_ = now;
}

} // namespace hw
} // namespace pcon
