/**
 * @file
 * Per-core hardware performance counters: the five events the paper's
 * model samples (elapsed non-halt cycles, retired instructions,
 * floating point operations, last-level cache references, memory
 * transactions) plus an elapsed-cycle reference (TSC-like).
 */

#ifndef PCON_HW_COUNTERS_H
#define PCON_HW_COUNTERS_H

#include <cstdint>

namespace pcon {
namespace hw {

/**
 * A snapshot (or delta) of one core's cumulative counters. Stored as
 * doubles because the simulator advances fractional cycles; the
 * magnitudes are far below the 2^53 integer-precision limit for any
 * realistic run.
 */
struct CounterSnapshot
{
    /** Elapsed reference cycles (advance whether busy or halted). */
    double elapsedCycles = 0;
    /** Non-halt (busy) core cycles. */
    double nonhaltCycles = 0;
    /** Retired instructions. */
    double instructions = 0;
    /** Floating point operations. */
    double flops = 0;
    /** Last-level cache references. */
    double llcRefs = 0;
    /** Memory transactions. */
    double memTxns = 0;

    /** Counter difference (this - earlier). */
    CounterSnapshot
    minus(const CounterSnapshot &earlier) const
    {
        return {elapsedCycles - earlier.elapsedCycles,
                nonhaltCycles - earlier.nonhaltCycles,
                instructions - earlier.instructions,
                flops - earlier.flops,
                llcRefs - earlier.llcRefs,
                memTxns - earlier.memTxns};
    }

    /** Accumulate another snapshot/delta into this one. */
    void
    accumulate(const CounterSnapshot &delta)
    {
        elapsedCycles += delta.elapsedCycles;
        nonhaltCycles += delta.nonhaltCycles;
        instructions += delta.instructions;
        flops += delta.flops;
        llcRefs += delta.llcRefs;
        memTxns += delta.memTxns;
    }

    /** Clamp all fields at zero (used by observer-effect subtraction). */
    void
    clampNonNegative()
    {
        auto clamp = [](double &x) { if (x < 0) x = 0; };
        clamp(elapsedCycles);
        clamp(nonhaltCycles);
        clamp(instructions);
        clamp(flops);
        clamp(llcRefs);
        clamp(memTxns);
    }
};

} // namespace hw
} // namespace pcon

#endif // PCON_HW_COUNTERS_H
