#include "power_meter.h"

#include <cmath>
#include <utility>

#include "util/audit.h"
#include "util/logging.h"

namespace pcon {
namespace hw {

PowerMeter::PowerMeter(Machine &machine, MeterScope scope,
                       const MeterConfig &timing)
    : machine_(machine), scope_(scope), timing_(timing),
      noise_(timing.noiseSeed)
{
    util::fatalIf(timing.period <= 0, "meter period must be positive");
    util::fatalIf(timing.delay < 0, "meter delay cannot be negative");
    util::fatalIf(timing.noiseStddevW < 0,
                  "meter noise cannot be negative");
}

void
PowerMeter::start()
{
    if (running_)
        return;
    running_ = true;
    lastEnergyJ_ = cumulativeEnergyJ();
    pendingTick_ = machine_.simulation().schedule(
        timing_.period, [this] { tick(); });
}

void
PowerMeter::stop()
{
    if (!running_)
        return;
    running_ = false;
    machine_.simulation().cancel(pendingTick_);
    pendingTick_ = sim::InvalidEventId;
}

void
PowerMeter::subscribe(Subscriber fn)
{
    subscribers_.push_back(std::move(fn));
}

void
PowerMeter::setDeliveryPerturber(DeliveryPerturber fn)
{
    perturber_ = std::move(fn);
}

void
PowerMeter::trimHistory(std::size_t keep)
{
    while (history_.size() > keep)
        history_.pop_front();
}

util::Joules
PowerMeter::cumulativeEnergyJ()
{
    if (scope_ == MeterScope::Machine)
        return machine_.machineEnergyJ();
    util::Joules total{0};
    for (int chip = 0; chip < machine_.config().chips; ++chip)
        total += machine_.packageEnergyJ(chip);
    return total;
}

void
PowerMeter::tick()
{
    if (!running_)
        return;
    sim::Simulation &sim = machine_.simulation();
    sim::SimTime interval_end = sim.now();

    util::Joules energy = cumulativeEnergyJ();
    // The measured store is an integral of non-negative power, so a
    // backwards step means the hardware model lost energy.
    PCON_AUDIT_MSG(energy >= lastEnergyJ_,
                   "meter observed cumulative energy shrink from ",
                   lastEnergyJ_, " J to ", energy, " J");
    util::Watts watts = intervalWatts(
        energy - lastEnergyJ_, sim::toSimSeconds(timing_.period));
    lastEnergyJ_ = energy;
    if (timing_.noiseStddevW > 0)
        watts += util::Watts(noise_.normal(0.0, timing_.noiseStddevW));

    PCON_AUDIT_MSG(std::isfinite(watts.value()),
                   "meter produced a non-finite sample");
    Sample sample{interval_end, interval_end + timing_.delay, watts};
    if (perturber_) {
        for (const Sample &out : perturber_(sample))
            scheduleDelivery(out);
    } else {
        scheduleDelivery(sample);
    }

    pendingTick_ = sim.schedule(timing_.period, [this] { tick(); });
}

util::Watts
PowerMeter::intervalWatts(util::Joules delta, util::SimSeconds period)
{
    // A zero-length nominal period would turn every interval into a
    // division by zero and deliver inf/NaN watts downstream; fail
    // loudly at the first tick instead.
    PCON_AUDIT_MSG(period.value() > 0,
                   "meter nominal period ", period,
                   " s is zero-length; samples would be non-finite");
    return delta / period;
}

void
PowerMeter::scheduleDelivery(const Sample &sample)
{
    sim::Simulation &sim = machine_.simulation();
    sim::SimTime wait = sample.deliveredAt - sim.now();
    PCON_AUDIT_MSG(wait >= 0,
                   "meter sample delivery scheduled in the past");
    if (wait < 0)
        wait = 0;
    sim.schedule(wait, [this, sample] {
        history_.push_back(sample);
        if (history_.size() > maxHistory_)
            history_.pop_front();
        for (auto &fn : subscribers_)
            fn(sample);
    });
}

} // namespace hw
} // namespace pcon
