/**
 * @file
 * The simulated multicore machine. Cores run task activity signatures
 * under per-core duty-cycle modulation; the machine lazily integrates
 * the hidden ground-truth power into cumulative machine/package/device
 * energy and advances per-core event counters.
 *
 * The OS-facing surface mirrors what the paper's kernel facility uses
 * on real hardware: read counters, write duty-cycle levels, observe
 * meters. Ground truth (truePowerW etc.) exists for meters and tests
 * only.
 */

#ifndef PCON_HW_MACHINE_H
#define PCON_HW_MACHINE_H

#include <functional>
#include <vector>

#include "hw/activity.h"
#include "hw/config.h"
#include "hw/counters.h"
#include "sim/simulation.h"
#include "util/sync.h"
#include "util/units.h"

namespace pcon {
namespace hw {

/** Peripheral device classes with measurable power contribution. */
enum class DeviceKind {
    Disk,
    Net,
};

/**
 * One machine in the simulation. All mutators synchronize lazily
 * integrated state (counters and energy) to the current simulated
 * time first, so power is integrated exactly over piecewise-constant
 * activity intervals.
 */
class PCON_SHARD_OWNED Machine
{
  public:
    /**
     * @param simulation Event loop providing the clock.
     * @param cfg Static machine description.
     */
    Machine(sim::Simulation &simulation, const MachineConfig &cfg);

    /** Static configuration. */
    const MachineConfig &config() const { return cfg_; }

    /** Total number of cores. */
    int totalCores() const { return cfg_.totalCores(); }

    /**
     * Mark a core busy executing the given activity signature.
     * Replaces any previous activity on that core.
     */
    void setRunning(int core, const ActivityVector &activity);

    /** Mark a core idle (halted; non-halt cycles stop accruing). */
    void setIdle(int core);

    /** True when the core is executing a task. */
    bool isBusy(int core) const;

    /** Activity signature currently on the core (valid when busy). */
    const ActivityVector &activity(int core) const;

    /**
     * Set the duty-cycle modulation level, 1..dutyDenom. Writing the
     * register costs nothing in simulated time, as in hardware where
     * it is a few hundred cycles (Section 3.5).
     */
    void setDutyLevel(int core, int level);

    /** Current duty-cycle level of the core. */
    int dutyLevel(int core) const;

    /** Duty fraction = level / dutyDenom in (0, 1]. */
    double dutyFraction(int core) const;

    /**
     * Set the core's DVFS operating point (index into
     * MachineConfig::pstates; 0 = fastest). Lower P-states reduce
     * frequency linearly and active core power superlinearly
     * (voltage scales with frequency).
     */
    void setPState(int core, int pstate);

    /** Current P-state index of the core. */
    int pstate(int core) const;

    /** Frequency ratio of the core's current P-state, (0, 1]. */
    double pstateRatio(int core) const;

    /**
     * Active-power multiplier of a P-state ratio: ratio * voltage^2
     * with voltage = 0.6 + 0.4 * ratio. At ratio 1 this is 1.
     */
    // pcon-lint: allow(units) dimensionless multiplier, not a wattage
    static double pstatePowerScale(double ratio);

    /**
     * Task work-progress rate on this core in cycles per second:
     * freq * dutyFraction while busy. The OS uses this to schedule
     * compute-phase completions.
     */
    double workRateHz(int core) const;

    /** Read the core's cumulative counters (synchronizes first). */
    CounterSnapshot readCounters(int core);

    /**
     * Read every core's counters in one pass: a single sync, then
     * one snapshot (and one fault-hook application, exactly as
     * readCounters would) per core. `out` is resized to totalCores().
     * The per-slice sampling path in core/container_manager uses
     * this so one synchronization services all containers.
     */
    void readCountersBatch(std::vector<CounterSnapshot> &out);

    /**
     * Rewrites the snapshot readCounters() reports for a core (fault
     * injection: stuck-at or saturated counters). Operates on the
     * returned copy only — ground-truth counters and energy are
     * untouched, exactly like a misbehaving PMU read on real
     * hardware. Rewrites must keep successive reads monotone.
     */
    using CounterFaultHook =
        std::function<void(int core, CounterSnapshot &snapshot)>;

    /** Install (or clear, with nullptr) the counter fault hook. */
    void setCounterFaultHook(CounterFaultHook fn);

    /**
     * Add extra counter events to a core (the observer effect of
     * container maintenance itself, Section 3.5).
     */
    void injectCounterEvents(int core, const CounterSnapshot &extra);

    /** Raise/lower a device's busy refcount (I/O in flight). */
    void setDeviceBusy(DeviceKind kind, bool busy);

    /** True when the device has at least one operation in flight. */
    bool deviceBusy(DeviceKind kind) const;

    /** Ground truth: whole-machine power right now. */
    util::Watts truePowerW() const;

    /** Ground truth: whole-machine active (full minus idle) power. */
    util::Watts trueActivePowerW() const;

    /** Ground truth: package power of one chip right now. */
    util::Watts truePackagePowerW(int chip) const;

    /** Cumulative whole-machine energy since start. */
    util::Joules machineEnergyJ();

    /** Cumulative package energy of one chip since start. */
    util::Joules packageEnergyJ(int chip);

    /** Cumulative energy of one device class since start. */
    util::Joules deviceEnergyJ(DeviceKind kind);

    /** Simulation this machine belongs to. */
    sim::Simulation &simulation() { return sim_; }

  private:
    CounterFaultHook counterFaultHook_;

    struct CoreState
    {
        bool busy = false;
        ActivityVector activity{};
        int dutyLevel = 0;          // set to denom in ctor
        int pstate = 0;             // P0 = nominal frequency
        /**
         * dutyLevel / dutyDenom, cached when the level is written:
         * the integration and power paths used to redo this division
         * per core per sync (millions per second). The cached value
         * is the very same quotient, so results are bit-identical.
         */
        double dutyFrac = 0.0;
        CounterSnapshot counters{};
    };

    /**
     * Integrate counters and energy up to now. Inline fast path:
     * most calls happen repeatedly within one event timestamp, where
     * there is nothing to integrate.
     */
    void
    sync()
    {
        if (sim_.now() != lastSync_)
            syncSlow();
    }

    /** The actual integration step; called once per distinct time. */
    void syncSlow();

    /** Ground-truth active power of one core right now. */
    double coreActiveW(const CoreState &core) const;

    /**
     * Ground-truth active power of one chip (cores+maintenance),
     * memoized: the per-core sum only changes when a core on the
     * chip flips busy/idle, changes activity, duty level, or
     * P-state, so mutators drop the cached value and this recomputes
     * it from scratch — the identical full-sum loop, preserving
     * floating-point accumulation order bit for bit — on the next
     * read. sync() reads it twice per chip per interval (machine and
     * package integration), which made the old recompute-every-time
     * loop ~25% of the simulator's hot-path profile.
     */
    double chipActiveW(int chip) const;

    /** Drop the memoized chip power for the chip owning `core`. */
    void invalidateChipPower(int core);

    /** Device power right now. */
    util::Watts devicePowerW() const;

    void checkCore(int core) const;
    void checkChip(int chip) const;

    sim::Simulation &sim_;
    MachineConfig cfg_;
    std::vector<CoreState> cores_;
    /** Memoized chipActiveW values; NaN-free only when valid. */
    mutable std::vector<double> chipActiveCacheW_;
    mutable std::vector<bool> chipActiveCacheValid_;
    std::vector<util::Joules> packageEnergyJ_;
    util::Joules machineEnergyJ_{0};
    util::Joules diskEnergyJ_{0};
    util::Joules netEnergyJ_{0};
    int diskBusy_ = 0;
    int netBusy_ = 0;
    sim::SimTime lastSync_ = 0;
};

} // namespace hw
} // namespace pcon

#endif // PCON_HW_MACHINE_H
