/**
 * @file
 * Machine configuration: topology, frequency, duty-cycle granularity,
 * meter characteristics, and the *hidden* ground-truth power
 * parameters. The accounting layers (os/, core/) must never read
 * GroundTruthParams — they see only counters, meters, and duty
 * controls, like the paper's OS sees real hardware.
 */

#ifndef PCON_HW_CONFIG_H
#define PCON_HW_CONFIG_H

#include <string>
#include <vector>

#include "sim/time.h"

namespace pcon {
namespace hw {

/**
 * Hidden physical power behaviour of a machine. The linear terms are
 * what an event-driven model can capture; the interaction term is the
 * "differing characteristics between calibration and production
 * workloads" (Section 3.2) that makes online recalibration matter.
 */
struct GroundTruthParams
{
    /** Whole-machine idle power (Watts); constant floor. */
    double machineIdleW = 0;
    /** Per-package idle power, part of the on-chip meter reading. */
    double packageIdleW = 0;
    /**
     * Shared chip maintenance power (Watts): drawn by a package while
     * at least one of its cores is non-idle (clocking, regulators,
     * uncore — Figure 1's non-scaling increment).
     */
    double chipMaintenanceW = 0;
    /** Per busy core at full duty: base pipeline/clock power. */
    double coreBusyW = 0;
    /** Watts per unit of instructions-per-cycle on a busy core. */
    double insW = 0;
    /** Watts per unit of FP-ops-per-cycle on a busy core. */
    double flopW = 0;
    /** Watts per unit of LLC-references-per-cycle on a busy core. */
    double llcW = 0;
    /** Watts per unit of memory-transactions-per-cycle on a core. */
    double memW = 0;
    /**
     * Nonlinear cache*memory interaction (Watts at the normalization
     * rates below). Zero during one-dimensional calibration
     * microbenchmarks, large for simultaneous cache+memory workloads
     * such as Stress — the unmodeled residual of Figure 8.
     */
    double nlCacheMemW = 0;
    /** LLC rate at which the interaction term is normalized. */
    double nlLlcNorm = 0.05;
    /** Memory rate at which the interaction term is normalized. */
    double nlMemNorm = 0.01;
    /** Disk device power while servicing requests (Watts). */
    double diskActiveW = 0;
    /** NIC power while transferring (Watts). */
    double netActiveW = 0;

    bool operator==(const GroundTruthParams &) const = default;
};

/** Characteristics of one power measurement instrument. */
struct MeterConfig
{
    /** Interval between successive readings. */
    sim::SimTime period = sim::msec(1);
    /** Lag between physical interval end and software visibility. */
    sim::SimTime delay = sim::msec(1);
    /**
     * Gaussian measurement noise added to each delivered sample
     * (Watts). Real meters quantize and jitter; the alignment and
     * recalibration pipeline must tolerate it.
     */
    double noiseStddevW = 0;
    /** Seed of the meter's private noise generator. */
    std::uint64_t noiseSeed = 0x7e7e7;

    bool operator==(const MeterConfig &) const = default;
};

/**
 * Static description of one machine. Factory functions below provide
 * the three platforms of the paper's evaluation (Section 4).
 */
struct MachineConfig
{
    /** Human-readable platform name. */
    std::string name;
    /** Number of processor packages. */
    int chips = 1;
    /** Cores per package. */
    int coresPerChip = 4;
    /** Core clock in GHz. */
    double freqGhz = 3.0;
    /**
     * Duty-cycle denominator: levels are 1..dutyDenom, giving
     * fractions k/dutyDenom (Intel modulation uses 1/8 or 1/16).
     */
    int dutyDenom = 8;
    /**
     * Per-core DVFS operating points as frequency ratios of the
     * nominal clock, fastest first (P0 = 1.0). Voltage scales with
     * frequency, so power falls superlinearly at lower P-states —
     * the actuator trade-off the duty-vs-DVFS ablation explores.
     * (The paper's facility uses duty-cycle modulation only.)
     */
    std::vector<double> pstates{1.0, 0.85, 0.7, 0.55};
    /** True when the package exposes an on-chip energy meter. */
    bool hasOnChipMeter = false;
    /** On-chip meter timing (valid when hasOnChipMeter). */
    MeterConfig onChipMeter{sim::msec(1), sim::msec(1)};
    /** External wall-power meter timing (always present). */
    MeterConfig wattsupMeter{sim::sec(1), sim::msec(1200)};
    /** Hidden physical parameters. */
    GroundTruthParams truth;

    bool operator==(const MachineConfig &) const = default;

    /** Total core count. */
    int totalCores() const { return chips * coresPerChip; }
    /** Core cycles per nanosecond. */
    double cyclesPerNs() const { return freqGhz; }
    /** Package index of a global core id (cores numbered per chip). */
    int chipOf(int core) const { return core / coresPerChip; }
};

/**
 * Dual-socket, dual-core-per-socket Intel Xeon 5160 "Woodcrest",
 * 3.0 GHz (2006-era, power-hungry cores).
 */
MachineConfig woodcrestConfig();

/**
 * Dual-socket, six-core-per-socket Intel Xeon L5640 "Westmere",
 * 2.26 GHz low-power part with a pronounced unmodeled cache/memory
 * interaction (Stress runs unusually hot here, per Section 4.2).
 */
MachineConfig westmereConfig();

/**
 * Single-socket quad-core Intel Xeon E31220 "SandyBridge", 3.1 GHz,
 * with the on-chip package energy meter used throughout Section 4.
 */
MachineConfig sandyBridgeConfig();

} // namespace hw
} // namespace pcon

#endif // PCON_HW_CONFIG_H
