#include "config.h"

namespace pcon {
namespace hw {

MachineConfig
woodcrestConfig()
{
    MachineConfig cfg;
    cfg.name = "Woodcrest";
    cfg.chips = 2;
    cfg.coresPerChip = 2;
    cfg.freqGhz = 3.0;
    cfg.dutyDenom = 8;
    cfg.hasOnChipMeter = false;

    GroundTruthParams &t = cfg.truth;
    t.machineIdleW = 160.0;
    t.packageIdleW = 9.0;
    t.chipMaintenanceW = 6.5;
    // The 65 nm core's inefficiency is concentrated in instruction
    // execution: per-instruction energy is several times the 32 nm
    // parts', while base clocking power is comparable. This is what
    // spreads Figure 13's per-workload energy ratios (compute-bound
    // work suffers on Woodcrest; memory-bound work much less).
    t.coreBusyW = 6.0;
    t.insW = 7.0;
    t.flopW = 3.2;
    t.llcW = 62.0;
    t.memW = 270.0;
    t.nlCacheMemW = 2.0;
    t.diskActiveW = 9.0;
    t.netActiveW = 5.0;
    return cfg;
}

MachineConfig
westmereConfig()
{
    MachineConfig cfg;
    cfg.name = "Westmere";
    cfg.chips = 2;
    cfg.coresPerChip = 6;
    cfg.freqGhz = 2.26;
    cfg.dutyDenom = 8;
    cfg.hasOnChipMeter = false;

    GroundTruthParams &t = cfg.truth;
    t.machineIdleW = 120.0;
    t.packageIdleW = 5.0;
    t.chipMaintenanceW = 5.0;
    t.coreBusyW = 3.8;
    t.insW = 1.1;
    t.flopW = 1.6;
    t.llcW = 48.0;
    t.memW = 235.0;
    // Stress is notably hotter than models predict on this machine
    // (Section 4.2): a large unmodeled cache*memory interaction.
    t.nlCacheMemW = 5.5;
    t.diskActiveW = 8.0;
    t.netActiveW = 4.5;
    return cfg;
}

MachineConfig
sandyBridgeConfig()
{
    MachineConfig cfg;
    cfg.name = "SandyBridge";
    cfg.chips = 1;
    cfg.coresPerChip = 4;
    cfg.freqGhz = 3.1;
    cfg.dutyDenom = 8;
    cfg.hasOnChipMeter = true;
    cfg.onChipMeter = {sim::msec(1), sim::msec(1)};
    cfg.wattsupMeter = {sim::sec(1), sim::msec(1200)};

    GroundTruthParams &t = cfg.truth;
    // Idle is 26.1 W for the full machine but only ~5% of package
    // power: the package itself is highly energy proportional.
    t.machineIdleW = 26.1;
    t.packageIdleW = 1.6;
    t.chipMaintenanceW = 5.6;
    t.coreBusyW = 5.1;
    t.insW = 1.55;
    t.flopW = 2.0;
    t.llcW = 70.0;
    t.memW = 205.0;
    t.nlCacheMemW = 2.5;
    t.diskActiveW = 1.7;
    t.netActiveW = 5.8;
    return cfg;
}

} // namespace hw
} // namespace pcon
