/**
 * @file
 * Power measurement instruments (Section 3.2 / Section 4 setup): the
 * SandyBridge-style on-chip package energy meter (~1 ms readings
 * delivered with ~1 ms lag) and the Wattsup-style wall meter (1 s
 * whole-machine readings delivered ~1.2 s late over USB). Both
 * integrate ground-truth energy over their reporting period and
 * deliver *delayed* samples — recovering that delay is exactly what
 * the cross-correlation alignment is for.
 */

#ifndef PCON_HW_POWER_METER_H
#define PCON_HW_POWER_METER_H

#include <deque>
#include <functional>
#include <vector>

#include "hw/machine.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace pcon {
namespace hw {

/** What a meter physically measures. */
enum class MeterScope {
    /** Sum of all package energies (on-chip meter). */
    Package,
    /** Whole machine at the wall (Wattsup). */
    Machine,
};

/**
 * A periodic, delayed power meter. Every `period` it computes the
 * average power over the elapsed interval from cumulative ground-truth
 * energy, then delivers the sample to subscribers `delay` later.
 */
// pcon-lint: shard-owned
class PowerMeter
{
  public:
    /** One delivered measurement. */
    struct Sample
    {
        /** End of the physical measurement interval. */
        sim::SimTime intervalEnd;
        /** When software received the value (intervalEnd + delay). */
        sim::SimTime deliveredAt;
        /** Average power over the interval. */
        util::Watts watts;
    };

    using Subscriber = std::function<void(const Sample &)>;

    /**
     * Rewrites one physical measurement into the list of deliveries
     * software actually sees (fault injection: dropped, duplicated,
     * delayed, or quantized samples). Returning an empty vector drops
     * the sample entirely; `deliveredAt` of each returned sample must
     * be >= the original's `intervalEnd`.
     */
    using DeliveryPerturber =
        std::function<std::vector<Sample>(const Sample &)>;

    /**
     * @param machine Machine to measure.
     * @param scope Package sum or whole machine.
     * @param timing Reporting period and delivery delay.
     */
    PowerMeter(Machine &machine, MeterScope scope,
               const MeterConfig &timing);

    /** Begin periodic measurement at the current time. */
    void start();

    /** Stop measuring; pending deliveries still arrive. */
    void stop();

    /** Register a delivery callback. */
    void subscribe(Subscriber fn);

    /**
     * Install (or clear, with nullptr) the delivery perturber. At
     * most one is active; the fault injector owns this hook. Samples
     * a perturber drops never reach history() or subscribers — they
     * model measurements the meter never delivered.
     */
    void setDeliveryPerturber(DeliveryPerturber fn);

    /** All samples delivered so far, oldest first (bounded). */
    const std::deque<Sample> &history() const { return history_; }

    /** Truncate history to the most recent `keep` samples. */
    void trimHistory(std::size_t keep);

    /** Configured reporting period. */
    sim::SimTime period() const { return timing_.period; }

    /** Configured delivery delay. */
    sim::SimTime delay() const { return timing_.delay; }

    /** Measurement scope. */
    MeterScope scope() const { return scope_; }

    /**
     * Average power of `delta` energy spread over a `period`-long
     * interval — the conversion every tick performs. Audits against a
     * zero-length period, which would make every sample non-finite.
     * Static and public so the guard is unit-testable directly (the
     * constructor already rejects zero-period configs).
     */
    static util::Watts intervalWatts(util::Joules delta,
                                     util::SimSeconds period);

  private:
    void tick();
    void scheduleDelivery(const Sample &sample);
    util::Joules cumulativeEnergyJ();

    Machine &machine_;
    MeterScope scope_;
    MeterConfig timing_;
    sim::Rng noise_;
    bool running_ = false;
    sim::EventId pendingTick_ = sim::InvalidEventId;
    util::Joules lastEnergyJ_{0};
    std::deque<Sample> history_;
    std::vector<Subscriber> subscribers_;
    DeliveryPerturber perturber_;

    /** History cap; old samples are discarded beyond this. */
    static constexpr std::size_t maxHistory_ = 1 << 20;
};

} // namespace hw
} // namespace pcon

#endif // PCON_HW_POWER_METER_H
