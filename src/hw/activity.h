/**
 * @file
 * The resource-activity signature of a running task: the per-cycle
 * rates of the architectural events the paper's power model observes
 * (Section 3.1). A workload is characterized entirely by signatures
 * like this plus its process/socket structure; the accounting code
 * never sees anything else.
 */

#ifndef PCON_HW_ACTIVITY_H
#define PCON_HW_ACTIVITY_H

namespace pcon {
namespace hw {

/**
 * Event rates per non-halt core cycle while a task executes.
 *
 * All rates are per *non-halt* cycle, so duty-cycle modulation scales
 * absolute event frequencies without changing the signature.
 */
struct ActivityVector
{
    /** Retired instructions per cycle. */
    double ipc = 1.0;
    /** Floating point operations per cycle. */
    double flopsPerCycle = 0.0;
    /** Last-level cache references per cycle. */
    double llcPerCycle = 0.0;
    /** Memory transactions per cycle. */
    double memPerCycle = 0.0;

    /** Elementwise scale (used to blend phases). */
    ActivityVector
    scaled(double f) const
    {
        return {ipc * f, flopsPerCycle * f, llcPerCycle * f,
                memPerCycle * f};
    }
};

/** Linear blend a*(1-t) + b*t of two signatures. */
inline ActivityVector
blend(const ActivityVector &a, const ActivityVector &b, double t)
{
    return {a.ipc * (1 - t) + b.ipc * t,
            a.flopsPerCycle * (1 - t) + b.flopsPerCycle * t,
            a.llcPerCycle * (1 - t) + b.llcPerCycle * t,
            a.memPerCycle * (1 - t) + b.memPerCycle * t};
}

} // namespace hw
} // namespace pcon

#endif // PCON_HW_ACTIVITY_H
