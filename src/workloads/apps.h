/**
 * @file
 * The evaluation workloads of Section 4.2, modeled by their
 * resource-activity signatures and process/socket structure:
 *
 *  - RSA-crypto: synthetic security processing, three key sizes;
 *  - Solr: full-text search with long-tailed request lengths;
 *  - WeBWorK: multi-stage Apache/MySQL/latex/dvipng pipeline
 *    (Figure 4's topology);
 *  - Stress: simultaneous FP + cache + memory activity, ~100 ms
 *    requests (high, hard-to-model power);
 *  - GAE-Vosao: Platform-as-a-Service content management with
 *    untraceable background processing (Figure 9);
 *  - GAE-Hybrid: Vosao plus simple power viruses (Section 4.2).
 *
 * Per-machine cycle factors model microarchitectural affinity: the
 * newer SandyBridge core retires the same request in fewer cycles,
 * much more so for compute-bound work (RSA) than for memory-bound
 * work (Stress) — the source of Figure 13's energy-ratio spread.
 */

#ifndef PCON_WORKLOADS_APPS_H
#define PCON_WORKLOADS_APPS_H

#include <map>
#include <memory>

#include "workloads/app.h"

namespace pcon {
namespace wl {

/** Cycle multiplier for an app on a machine (1.0 = SandyBridge). */
double cycleFactor(const std::map<std::string, double> &factors,
                   const std::string &machine);

/** RSA-crypto: three request types, one per example key size. */
class RsaCryptoApp : public WorkerPoolApp
{
  public:
    explicit RsaCryptoApp(std::uint64_t seed = 101);

    std::string sampleType(sim::Rng &rng) override;
    double meanServiceCycles() const override;

  protected:
    std::vector<os::Op> makePlan(const std::string &type,
                                 std::size_t worker) override;
    void onDeploy(os::Kernel &kernel) override;

  private:
    double factor_ = 1.0;
    sim::Rng rng_;
};

/** Solr search: cache-heavy, long-tailed request service times. */
class SolrApp : public WorkerPoolApp
{
  public:
    explicit SolrApp(std::uint64_t seed = 102);

    std::string sampleType(sim::Rng &rng) override;
    double meanServiceCycles() const override;

  protected:
    std::vector<os::Op> makePlan(const std::string &type,
                                 std::size_t worker) override;
    void onDeploy(os::Kernel &kernel) override;

  private:
    double factor_ = 1.0;
    sim::Rng rng_;
};

/**
 * WeBWorK: httpd workers call a per-worker MySQL thread over a
 * persistent socket, fork latex and dvipng children, and touch disk —
 * the Figure 4 request anatomy. Problem-set popularity is Zipfian
 * over difficulty buckets; each bucket is its own request type so the
 * Figure 10 composition-change experiment can re-weight them.
 */
class WeBWorKApp : public WorkerPoolApp
{
  public:
    /** Number of problem-set difficulty buckets (request types). */
    static constexpr int NumBuckets = 12;

    explicit WeBWorKApp(std::uint64_t seed = 103);

    std::string sampleType(sim::Rng &rng) override;
    double meanServiceCycles() const override;

    /** Type tag of one bucket ("ww-b<k>"). */
    static std::string bucketType(int bucket);

  protected:
    std::vector<os::Op> makePlan(const std::string &type,
                                 std::size_t worker) override;
    void onDeploy(os::Kernel &kernel) override;

  private:
    double bucketCycles(int bucket) const;

    double factor_ = 1.0;
    sim::Rng rng_;
    /** Per-httpd-worker persistent MySQL connections (httpd side). */
    std::vector<os::Socket *> mysqlSockets_;
    /** Difficulty scale of each worker's in-flight request (the
     *  MySQL thread sizes its query work from this). */
    std::vector<double> mysqlScale_;
};

/** Stress: Adler-32-style FP+cache+memory churn, ~100 ms requests. */
class StressApp : public WorkerPoolApp
{
  public:
    explicit StressApp(std::uint64_t seed = 104);

    std::string sampleType(sim::Rng &rng) override;
    double meanServiceCycles() const override;

  protected:
    std::vector<os::Op> makePlan(const std::string &type,
                                 std::size_t worker) override;
    void onDeploy(os::Kernel &kernel) override;

  private:
    double factor_ = 1.0;
    sim::Rng rng_;
};

/**
 * GAE-Vosao: 9:1 read/write content management on a GAE-like Java
 * server, plus platform background tasks that are *not* bound to any
 * request (they charge the background container, Figure 9).
 */
class GaeVosaoApp : public WorkerPoolApp
{
  public:
    explicit GaeVosaoApp(std::uint64_t seed = 105);

    std::string sampleType(sim::Rng &rng) override;
    double meanServiceCycles() const override;

  protected:
    std::vector<os::Op> makePlan(const std::string &type,
                                 std::size_t worker) override;
    void onDeploy(os::Kernel &kernel) override;

  private:
    double factor_ = 1.0;
    sim::Rng rng_;
};

/**
 * GAE-Hybrid: GAE-Vosao requests mixed with simple power viruses
 * (intense simultaneous cache/memory/pipeline activity, ~100 ms per
 * virus) at roughly half the offered load each.
 */
class GaeHybridApp : public WorkerPoolApp
{
  public:
    explicit GaeHybridApp(std::uint64_t seed = 106);

    std::string sampleType(sim::Rng &rng) override;
    double meanServiceCycles() const override;

    /** The power virus request type tag. */
    static const char *virusType() { return "gae-virus"; }

  protected:
    std::vector<os::Op> makePlan(const std::string &type,
                                 std::size_t worker) override;
    void onDeploy(os::Kernel &kernel) override;

  private:
    double factor_ = 1.0;
    sim::Rng rng_;
};

/** Construct a workload by its paper name (for experiment drivers). */
std::unique_ptr<ServerApp> makeApp(const std::string &name,
                                   std::uint64_t seed);

/** All six workload names in the paper's figure order. */
const std::vector<std::string> &allWorkloadNames();

} // namespace wl
} // namespace pcon

#endif // PCON_WORKLOADS_APPS_H
