#include "app.h"

#include <utility>

#include "util/logging.h"

namespace pcon {
namespace wl {

using util::panicIf;

WorkerPoolApp::WorkerPoolApp(std::string name, int pool_size,
                             double request_bytes,
                             double response_bytes)
    : name_(std::move(name)), poolSize_(pool_size),
      requestBytes_(request_bytes), responseBytes_(response_bytes)
{}

void
WorkerPoolApp::deploy(os::Kernel &kernel)
{
    panicIf(kernel_ != nullptr, name_, " deployed twice");
    kernel_ = &kernel;
    int pool = poolSize_ > 0 ? poolSize_
                             : 2 * kernel.machine().totalCores();
    workers_.resize(static_cast<std::size_t>(pool));
    onDeploy(kernel);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        Worker &w = workers_[i];
        auto [app_end, worker_end] = kernel.socketPair();
        w.appEnd = app_end;
        w.workerEnd = worker_end;
        w.appEnd->setDeliveryCallback(
            [this, i](double bytes, os::RequestId ctx) {
                (void)bytes;
                responseArrived(i, ctx);
            });
        w.task = kernel.spawn(
            std::make_shared<PoolWorkerLogic>(*this, i),
            name_ + "-worker" + std::to_string(i));
    }
}

std::string
WorkerPoolApp::machineName() const
{
    return kernel_ ? kernel_->machine().config().name : std::string();
}

std::size_t
WorkerPoolApp::activeRequests() const
{
    std::size_t active = 0;
    for (const Worker &w : workers_)
        active += w.busy ? 1 : 0;
    return active;
}

void
WorkerPoolApp::submit(os::RequestId id, const std::string &type)
{
    panicIf(kernel_ == nullptr, name_, " not deployed");
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].busy) {
            dispatch(i, id, type);
            return;
        }
    }
    pendingQueue_.push_back(PendingRequest{id, type});
}

void
WorkerPoolApp::dispatch(std::size_t worker, os::RequestId id,
                        const std::string &type)
{
    Worker &w = workers_[worker];
    panicIf(w.busy, "dispatch to a busy worker");
    w.busy = true;
    w.current = id;
    w.plan = makePlan(type, worker);
    // The request message carries the request's context tag into the
    // worker (the socket tagging path of Section 3.3).
    w.appEnd->send(requestBytes_, id);
}

void
WorkerPoolApp::responseArrived(std::size_t worker,
                               os::RequestId context)
{
    Worker &w = workers_[worker];
    panicIf(!w.busy, "response from an idle worker");
    panicIf(context != w.current,
            "response context mismatch: got ", context, " expected ",
            w.current);
    w.busy = false;
    w.current = os::NoRequest;
    // Hand the freed worker to a queued request *before* notifying
    // completion: a closed-loop client submits from the completion
    // callback and must not race the queue for this worker.
    if (!pendingQueue_.empty()) {
        PendingRequest next = pendingQueue_.front();
        pendingQueue_.pop_front();
        dispatch(worker, next.id, next.type);
    }
    kernel_->requests().complete(context,
                                 kernel_->simulation().now());
}

os::Op
PoolWorkerLogic::next(os::Kernel &kernel, os::Task &self,
                      const os::OpResult &last)
{
    (void)kernel;
    (void)self;
    WorkerPoolApp::Worker &w = app_.workers_[index_];

    if (planPos_ == SIZE_MAX) {
        // Idle: wait for the next request.
        planPos_ = 0;
        lastForkedChild_ = os::NoTask;
        return os::RecvOp{w.workerEnd};
    }

    if (last.kind == os::OpResult::Kind::Forked)
        lastForkedChild_ = last.child;

    if (planPos_ < w.plan.size()) {
        os::Op op = w.plan[planPos_++];
        // Thread the just-forked child into a placeholder wait.
        if (auto *wait = std::get_if<os::WaitChildOp>(&op);
            wait != nullptr && wait->child == os::NoTask)
            wait->child = lastForkedChild_;
        return op;
    }

    // Plan finished: respond and go idle.
    planPos_ = SIZE_MAX;
    return os::SendOp{w.workerEnd, app_.responseBytes_};
}

} // namespace wl
} // namespace pcon
