/**
 * @file
 * An event-driven server (Node/memcached-style): one event-loop
 * process per core multiplexes many requests through user-level
 * continuations. A request runs a short phase right after its socket
 * read (which the kernel's in-band tagging attributes correctly),
 * parks, and is later *resumed by a user-level switch with no system
 * call* — the transfer the paper says OS-only tracking cannot see
 * (Section 3.3). With the kernel's sync-structure trap enabled
 * (KernelConfig::trapUserLevelSwitches, this repo's implementation of
 * the paper's future work), resumption rebinds the context and
 * attribution stays correct; with it disabled, the resumed phase is
 * charged to whichever request the loop last read.
 */

#ifndef PCON_WORKLOADS_EVENT_LOOP_APP_H
#define PCON_WORKLOADS_EVENT_LOOP_APP_H

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "workloads/app.h"

namespace pcon {
namespace wl {

/** Event-driven server with user-level request multiplexing. */
class EventLoopApp : public ServerApp
{
  public:
    /** Request types: cheap and dear differ in resumed-phase work. */
    static constexpr const char *cheapType() { return "evt-cheap"; }
    static constexpr const char *dearType() { return "evt-dear"; }

    /** Cycles of the initial (post-read) phase. */
    static constexpr double phase1Cycles = 1e6;
    /** Resumed-phase cycles for a cheap request. */
    static constexpr double cheapPhase2Cycles = 4e6;
    /** Resumed-phase cycles for a dear request. */
    static constexpr double dearPhase2Cycles = 40e6;
    /**
     * Simulated asynchronous backend latency between a request's
     * park and the readiness of its continuation (the "future" an
     * event-driven server awaits). While one request waits, the loop
     * reads and starts others — that interleaving is what makes
     * user-level resumption invisible to OS-only tracking.
     */
    static constexpr sim::SimTime backendDelay = sim::msec(3);

    explicit EventLoopApp(std::uint64_t seed = 201);

    void deploy(os::Kernel &kernel) override;
    std::string sampleType(sim::Rng &rng) override;
    void submit(os::RequestId id, const std::string &type) override;
    double meanServiceCycles() const override;
    const std::string &name() const override { return name_; }

  private:
    friend class EventLoopLogic;

    struct Loop
    {
        os::TaskId task = os::NoTask;
        os::Socket *appEnd = nullptr;
        os::Socket *loopEnd = nullptr;
    };

    /** The app-side bookkeeping knows the true finisher. */
    void finished(os::RequestId id);

    std::string name_ = "EventLoop";
    os::Kernel *kernel_ = nullptr;
    std::vector<Loop> loops_;
    std::size_t nextLoop_ = 0;
    /** Resumed-phase cycles per in-flight request. */
    std::map<os::RequestId, double> phase2_;
    sim::Rng rng_;
};

/**
 * The event-loop task: alternates between accepting new requests
 * from the socket (phase 1) and resuming parked continuations via
 * user-level switches (phase 2).
 */
class EventLoopLogic : public os::TaskLogic
{
  public:
    EventLoopLogic(EventLoopApp &app, std::size_t loop)
        : app_(app), loop_(loop)
    {}

    os::Op next(os::Kernel &kernel, os::Task &self,
                const os::OpResult &last) override;

  private:
    struct Parked
    {
        os::RequestId id;
        double cycles;
        sim::SimTime readyAt;
    };

    enum class State {
        Idle,
        Phase1,       // computing right after a read
        Switching,    // issued the user-level switch
        Phase2,       // computing the resumed continuation
        Responding,   // sending the response
    };

    EventLoopApp &app_;
    std::size_t loop_;
    State state_ = State::Idle;
    os::RequestId current_ = os::NoRequest;
    std::deque<Parked> parked_;
};

} // namespace wl
} // namespace pcon

#endif // PCON_WORKLOADS_EVENT_LOOP_APP_H
