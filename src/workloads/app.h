/**
 * @file
 * Server application framework for the evaluation workloads
 * (Section 4.2). A ServerApp deploys worker processes on a kernel,
 * accepts tagged requests through sockets, and completes the request
 * context when the response message returns — exactly the round trip
 * the power-container request tracking follows.
 *
 * WorkerPoolApp implements the common pool mechanics: a fixed set of
 * worker processes, each connected to the (external) client side by a
 * persistent socket. A request is an op *plan* (compute phases, inner
 * socket hops, forks, device I/O) the worker executes between the
 * recv of the request and the send of the response.
 */

#ifndef PCON_WORKLOADS_APP_H
#define PCON_WORKLOADS_APP_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "sim/rng.h"

namespace pcon {
namespace wl {

/**
 * One server application. Lifecycle: construct, deploy() once on a
 * kernel, then submit() requests; the app completes each request's
 * context (requests().complete) when its response arrives.
 */
class ServerApp
{
  public:
    virtual ~ServerApp() = default;

    /** Install server processes on the kernel. Call exactly once. */
    virtual void deploy(os::Kernel &kernel) = 0;

    /** Draw a request type according to the workload's type mix. */
    virtual std::string sampleType(sim::Rng &rng) = 0;

    /**
     * Inject one request of the given type. The id must come from
     * the kernel's RequestContextManager; the app completes it when
     * the response returns.
     */
    virtual void submit(os::RequestId id, const std::string &type) = 0;

    /**
     * Mean on-CPU work per request in core cycles on the deployed
     * machine (all stages combined). Load clients size arrival rates
     * from this.
     */
    virtual double meanServiceCycles() const = 0;

    /** Workload name ("RSA-crypto", "Solr", ...). */
    virtual const std::string &name() const = 0;
};

/**
 * Pool-of-workers base class. Subclasses provide the per-request op
 * plan; this class provides the sockets, queuing, dispatch, and
 * completion plumbing.
 */
class WorkerPoolApp : public ServerApp
{
  public:
    /**
     * @param name Workload name.
     * @param pool_size Worker process count (0 = 2 x cores).
     * @param request_bytes Size of request messages.
     * @param response_bytes Size of response messages.
     */
    WorkerPoolApp(std::string name, int pool_size = 0,
                  double request_bytes = 512,
                  double response_bytes = 4096);

    void deploy(os::Kernel &kernel) override;
    void submit(os::RequestId id, const std::string &type) override;
    const std::string &name() const override { return name_; }

    /** Kernel this app is deployed on (valid after deploy). */
    os::Kernel &kernel() const { return *kernel_; }

    /** Requests currently queued for a free worker. */
    std::size_t queuedRequests() const { return pendingQueue_.size(); }

    /** Requests currently executing on workers. */
    std::size_t activeRequests() const;

  protected:
    /** Per-worker plumbing and the current request's plan. */
    struct Worker
    {
        os::TaskId task = os::NoTask;
        os::Socket *appEnd = nullptr;
        os::Socket *workerEnd = nullptr;
        std::vector<os::Op> plan;
        bool busy = false;
        os::RequestId current = os::NoRequest;
    };

    /**
     * Build the op plan one worker executes for a request of `type`.
     * Called while dispatching; may use worker-specific resources the
     * subclass created in onDeploy (e.g. a per-worker database
     * socket).
     */
    virtual std::vector<os::Op> makePlan(const std::string &type,
                                         std::size_t worker) = 0;

    /** Subclass hook: create app-specific resources at deploy time. */
    virtual void
    onDeploy(os::Kernel &kernel)
    {
        (void)kernel;
    }

    /** Access to a worker's plumbing (for subclass deploy hooks). */
    Worker &worker(std::size_t i) { return workers_[i]; }

    /** Number of workers. */
    std::size_t workerCount() const { return workers_.size(); }

    /** The deployed machine's name ("" before deploy). */
    std::string machineName() const;

  private:
    friend class PoolWorkerLogic;

    struct PendingRequest
    {
        os::RequestId id;
        std::string type;
    };

    void dispatch(std::size_t worker, os::RequestId id,
                  const std::string &type);
    void responseArrived(std::size_t worker, os::RequestId context);

    std::string name_;
    int poolSize_;
    double requestBytes_;
    double responseBytes_;
    os::Kernel *kernel_ = nullptr;
    std::vector<Worker> workers_;
    std::deque<PendingRequest> pendingQueue_;
};

/**
 * The task logic of one pool worker: loop { recv request; execute the
 * plan the app prepared; send response }. Fork results are threaded
 * into subsequent WaitChildOp entries automatically.
 */
class PoolWorkerLogic : public os::TaskLogic
{
  public:
    PoolWorkerLogic(WorkerPoolApp &app, std::size_t index)
        : app_(app), index_(index)
    {}

    os::Op next(os::Kernel &kernel, os::Task &self,
                const os::OpResult &last) override;

  private:
    WorkerPoolApp &app_;
    std::size_t index_;
    /** SIZE_MAX = waiting for a request; else next plan position. */
    std::size_t planPos_ = SIZE_MAX;
    os::TaskId lastForkedChild_ = os::NoTask;
};

} // namespace wl
} // namespace pcon

#endif // PCON_WORKLOADS_APP_H
