#include "microbench.h"

#include <memory>

#include "core/recalibration.h"
#include "hw/machine.h"
#include "hw/power_meter.h"
#include "os/kernel.h"
#include "sim/rng.h"
#include "util/logging.h"
#include "util/sync.h"

namespace pcon {
namespace wl {

using hw::ActivityVector;
using os::ComputeOp;
using os::Op;
using os::OpResult;
using os::ScriptedLogic;

const std::vector<MicrobenchPattern> &
calibrationPatterns()
{
    static const std::vector<MicrobenchPattern> patterns{
        {"spin", {1.0, 0.0, 0.0, 0.0}, false, false},
        {"instr", {2.5, 0.0, 0.0, 0.0}, false, false},
        {"float", {1.2, 0.5, 0.0, 0.0}, false, false},
        {"cache", {1.2, 0.0, 0.05, 0.001}, false, false},
        {"mem", {0.9, 0.0, 0.02, 0.012}, false, false},
        {"diskio", {0.6, 0.0, 0.005, 0.0005}, true, false},
        {"netio", {0.7, 0.0, 0.004, 0.0004}, false, true},
        {"mixed", {1.5, 0.2, 0.02, 0.004}, true, false},
    };
    return patterns;
}

const std::vector<double> &
calibrationLoadLevels()
{
    static const std::vector<double> levels{1.0, 0.75, 0.5, 0.25};
    return levels;
}

namespace {

/** Compute/sleep loop hitting a utilization level on one core. */
std::shared_ptr<os::TaskLogic>
dutyLoop(const ActivityVector &activity, double level, double freq_ghz,
         std::shared_ptr<sim::Rng> rng)
{
    return std::make_shared<ScriptedLogic>(
        std::vector<ScriptedLogic::Step>{
            [=](os::Kernel &, os::Task &, const OpResult &) -> Op {
                double cycles = rng->uniform(3e6, 5e6);
                return ComputeOp{activity, cycles};
            },
            [=](os::Kernel &, os::Task &, const OpResult &) -> Op {
                if (level >= 0.999)
                    return ComputeOp{activity, 1.0};
                double busy_ns = 4e6 / freq_ghz;
                double idle_ns = busy_ns * (1.0 - level) / level;
                return os::SleepOp{static_cast<sim::SimTime>(
                    idle_ns * rng->uniform(0.8, 1.2))};
            }},
        /*loop=*/true);
}

/** I/O loop keeping a device at a utilization level. */
std::shared_ptr<os::TaskLogic>
ioLoop(hw::DeviceKind device, double level, sim::SimTime service_est,
       std::shared_ptr<sim::Rng> rng)
{
    double bytes = device == hw::DeviceKind::Disk ? 1e6 : 1e5;
    return std::make_shared<ScriptedLogic>(
        std::vector<ScriptedLogic::Step>{
            [=](os::Kernel &, os::Task &, const OpResult &) -> Op {
                return os::IoOp{device, bytes};
            },
            [=](os::Kernel &, os::Task &, const OpResult &) -> Op {
                double idle = sim::toSeconds(service_est) *
                    (1.0 - level) / std::max(0.05, level);
                return os::SleepOp{sim::secF(
                    idle * rng->uniform(0.8, 1.2))};
            }},
        /*loop=*/true);
}

/** Collect samples for one (pattern, level) run on a fresh machine. */
void
runOnePattern(const hw::MachineConfig &machine_cfg,
              const MicrobenchPattern &pattern, double level,
              const CalibrationRunConfig &cfg,
              core::Calibrator &calibrator,
              std::vector<std::string> *labels)
{
    sim::Simulation sim;
    hw::Machine machine(sim, machine_cfg);
    os::RequestContextManager requests;
    os::Kernel kernel(machine, requests);
    auto rng = std::make_shared<sim::Rng>(cfg.seed);

    // One duty loop per core; I/O loops when the pattern asks.
    for (int c = 0; c < machine.totalCores(); ++c)
        kernel.spawn(dutyLoop(pattern.activity, level,
                              machine_cfg.freqGhz, rng),
                     pattern.name + "-" + std::to_string(c),
                     os::NoRequest, c);
    if (pattern.disk) {
        sim::SimTime service = kernel.config().disk.perOpLatency +
            sim::secF(1e6 / kernel.config().disk.bytesPerSec);
        kernel.spawn(ioLoop(hw::DeviceKind::Disk, level, service, rng),
                     "diskload");
    }
    if (pattern.net) {
        sim::SimTime service = kernel.config().net.perOpLatency +
            sim::secF(1e5 / kernel.config().net.bytesPerSec);
        kernel.spawn(ioLoop(hw::DeviceKind::Net, level, service, rng),
                     "netload");
    }

    // Offline metering: zero delay, so windows pair index-for-index.
    auto dummy_model = std::make_shared<core::LinearPowerModel>();
    core::ModelPowerSampler sampler(kernel, dummy_model,
                                    cfg.samplePeriod);
    hw::PowerMeter meter(machine, hw::MeterScope::Machine,
                         {cfg.samplePeriod, 0});
    std::vector<double> watts;
    meter.subscribe([&](const hw::PowerMeter::Sample &s) {
        watts.push_back(s.watts.value());
    });
    sampler.start();
    meter.start();
    sim.run(cfg.duration);

    util::panicIf(sampler.windows().size() != watts.size(),
                  "calibration window/meter mismatch: ",
                  sampler.windows().size(), " vs ", watts.size());
    std::string label = pattern.name + "@" +
        std::to_string(static_cast<int>(level * 100)) + "%";
    for (std::size_t i = 0; i < watts.size(); ++i) {
        if (static_cast<int>(i) < cfg.warmupSamples)
            continue;
        core::CalibrationSample sample;
        sample.metrics = sampler.windows()[i].metrics;
        sample.measuredFullW = watts[i];
        calibrator.add(sample);
        if (labels != nullptr)
            labels->push_back(label);
    }
}

} // namespace

core::Calibrator
calibrateMachine(const hw::MachineConfig &machine,
                 const CalibrationRunConfig &cfg,
                 std::vector<std::string> *labels)
{
    core::Calibrator calibrator;
    for (const MicrobenchPattern &pattern : calibrationPatterns())
        for (double level : calibrationLoadLevels())
            runOnePattern(machine, pattern, level, cfg, calibrator,
                          labels);
    return calibrator;
}

core::LinearPowerModel
calibrateModel(const hw::MachineConfig &machine, core::ModelKind kind,
               double *rmse_w, const CalibrationRunConfig &cfg)
{
    // Calibration is a pure function of its inputs: every
    // (pattern, level) run builds a fresh Simulation/Machine/Kernel
    // from seeded RNGs and touches no global state, and the fit is
    // deterministic. Memoize the result per process — tests and
    // benches rebuild the identical model for the identical platform
    // config dozens of times, and each rebuild simulates hundreds of
    // thousands of events (it dominated the bench_webwork_trace
    // hot-path profile). A cache hit returns the exact same
    // coefficient values a recomputation would.
    struct FitKey
    {
        hw::MachineConfig machine;
        core::ModelKind kind;
        CalibrationRunConfig cfg;

        bool operator==(const FitKey &) const = default;
    };
    struct FitEntry
    {
        FitKey key;
        core::LinearPowerModel model;
        double rmseW = 0;
    };
    // pcon-lint: allow(shared-state) the fit-cache mutex itself; cache is only touched under it
    static util::Mutex mu;
    // Leaked on purpose: keeps the cache valid during static
    // destruction of late global objects.
    // pcon-lint: allow(shared-state) guarded by mu above (function-local, so no PCON_GUARDED_BY)
    static std::vector<FitEntry> &cache = *new std::vector<FitEntry>;

    FitKey key{machine, kind, cfg};
    util::LockGuard lock(mu);
    for (const FitEntry &entry : cache) {
        if (entry.key == key) {
            if (rmse_w != nullptr)
                *rmse_w = entry.rmseW;
            return entry.model;
        }
    }
    core::Calibrator calibrator = calibrateMachine(machine, cfg);
    double rmse = 0;
    core::LinearPowerModel model = calibrator.fit(kind, &rmse);
    cache.push_back(FitEntry{std::move(key), model, rmse});
    if (rmse_w != nullptr)
        *rmse_w = rmse;
    return model;
}

std::vector<core::CalibrationSample>
toActiveSamples(const core::Calibrator &calibrator, double idle_w)
{
    std::vector<core::CalibrationSample> active;
    active.reserve(calibrator.samples().size());
    for (core::CalibrationSample s : calibrator.samples()) {
        s.measuredFullW -= idle_w;
        active.push_back(s);
    }
    return active;
}

} // namespace wl
} // namespace pcon
