#include "cluster.h"

#include <cmath>
#include <functional>

#include "sim/rng.h"
#include "workloads/client.h"
#include "util/logging.h"
#include "util/stats.h"

namespace pcon {
namespace wl {

using util::fatalIf;

ClusterExperiment::ClusterExperiment(ClusterExperimentConfig cfg)
    : cfg_(std::move(cfg))
{
    std::size_t n = cfg_.machines.size();
    fatalIf(n < 2, "cluster experiment needs at least two machines");
    fatalIf(cfg_.models.size() != n,
            "need one model per machine");
    fatalIf(cfg_.apps.empty(), "cluster experiment needs apps");
    fatalIf(cfg_.appLoadShare.size() != cfg_.apps.size(),
            "need one load share per app");
    double share_sum = 0;
    for (double s : cfg_.appLoadShare) {
        fatalIf(s <= 0, "app load shares must be positive");
        share_sum += s;
    }
    fatalIf(std::abs(share_sum - 1.0) > 1e-6,
            "app load shares must sum to 1");

    // Container-profile every app on every machine; meanwhile learn
    // each app's mean service cycles on the preferred machine for
    // the arrival mix.
    profiles_.resize(n);
    std::vector<double> mean_cycles(cfg_.apps.size(), 0.0);
    for (std::size_t m = 0; m < n; ++m) {
        for (std::size_t a = 0; a < cfg_.apps.size(); ++a) {
            core::ProfileTable table =
                profileMachine(m, cfg_.apps[a]);
            // Merge into the machine's combined table by re-adding
            // each type's means (ProfileTable averages, so one
            // mean-valued record per type preserves them).
            for (const auto &[type, profile] : table.all()) {
                core::RequestRecord record;
                record.type = type;
                record.cpuEnergyJ = profile.meanEnergyJ;
                record.ioEnergyJ = util::Joules{0};
                record.cpuTimeNs = profile.meanCpuTimeS * 1e9;
                record.created = 0;
                record.completed =
                    sim::secF(profile.meanResponseS);
                profiles_[m].add(record);
            }
            if (m == 0) {
                // Mean service cycles on the preferred machine.
                sim::Simulation scratch_sim;
                hw::Machine scratch(scratch_sim, cfg_.machines[0]);
                os::RequestContextManager requests;
                os::Kernel kernel(scratch, requests);
                auto app = makeApp(cfg_.apps[a], cfg_.seed);
                app->deploy(kernel);
                mean_cycles[a] = app->meanServiceCycles();
            }
        }
    }

    // Arrival probability per app: load share / service cost.
    arrivalShare_.resize(cfg_.apps.size());
    double total = 0;
    for (std::size_t a = 0; a < cfg_.apps.size(); ++a) {
        arrivalShare_[a] = cfg_.appLoadShare[a] / mean_cycles[a];
        total += arrivalShare_[a];
    }
    for (double &p : arrivalShare_)
        p /= total;

    slowestCapacity_ = probeCapacity(n - 1);
}

const core::ProfileTable &
ClusterExperiment::profiles(std::size_t machine) const
{
    fatalIf(machine >= profiles_.size(), "machine out of range");
    return profiles_[machine];
}

double
ClusterExperiment::offeredRatePerSec() const
{
    return cfg_.offeredOverSlowestCapacity * slowestCapacity_;
}

core::ProfileTable
ClusterExperiment::profileMachine(std::size_t machine,
                                  const std::string &app_name) const
{
    ServerWorld world(cfg_.machines[machine],
                      std::make_shared<core::LinearPowerModel>(
                          *cfg_.models[machine]));
    auto app = makeApp(app_name, cfg_.seed + 31);
    app->deploy(world.kernel());
    LoadClient client(*app, world.kernel(),
                      LoadClient::forUtilization(
                          *app, world.kernel(), 1.0,
                          cfg_.seed + 32));
    client.start();
    world.run(sim::sec(2));
    world.manager().clearRecords();
    world.run(cfg_.profilingSpan);
    client.stop();
    core::ProfileTable table;
    table.add(world.manager().records());
    return table;
}

double
ClusterExperiment::probeCapacity(std::size_t machine) const
{
    sim::Simulation sim;
    ServerWorld world(sim, cfg_.machines[machine],
                      std::make_shared<core::LinearPowerModel>());
    std::vector<std::unique_ptr<ServerApp>> apps;
    for (const std::string &name : cfg_.apps) {
        apps.push_back(makeApp(name, cfg_.seed + 51));
        apps.back()->deploy(world.kernel());
    }

    sim::Rng rng(cfg_.seed + 52);
    std::uint64_t completed = 0;
    bool counting = false;
    auto submit_one = [&] {
        std::size_t a = rng.weightedIndex(arrivalShare_);
        std::string type = apps[a]->sampleType(rng);
        os::RequestId id =
            world.requests().create(type, sim.now());
        apps[a]->submit(id, type);
    };
    world.requests().onComplete([&](const os::RequestInfo &) {
        if (counting)
            ++completed;
        submit_one();
    });
    for (int i = 0;
         i < 3 * cfg_.machines[machine].totalCores(); ++i)
        submit_one();
    sim.run(sim::sec(3));
    counting = true;
    sim::SimTime t0 = sim.now();
    sim.run(t0 + cfg_.probeSpan);
    return static_cast<double>(completed) /
        sim::toSeconds(sim.now() - t0);
}

ClusterPolicyResult
ClusterExperiment::run(core::DistributionPolicy policy)
{
    std::size_t n = cfg_.machines.size();
    sim::Simulation sim;
    std::vector<std::unique_ptr<ServerWorld>> worlds;
    std::vector<core::DispatcherMachine> dispatcher_machines;
    for (std::size_t m = 0; m < n; ++m) {
        worlds.push_back(std::make_unique<ServerWorld>(
            sim, cfg_.machines[m],
            std::make_shared<core::LinearPowerModel>(
                *cfg_.models[m])));
        dispatcher_machines.push_back(
            {cfg_.machines[m].name, &worlds.back()->kernel()});
    }
    // One instance of every app on every machine.
    std::vector<std::vector<std::unique_ptr<ServerApp>>> apps(n);
    for (std::size_t m = 0; m < n; ++m) {
        for (std::size_t a = 0; a < cfg_.apps.size(); ++a) {
            apps[m].push_back(makeApp(
                cfg_.apps[a],
                cfg_.seed + 60 + m * cfg_.apps.size() + a));
            apps[m].back()->deploy(worlds[m]->kernel());
        }
    }

    core::RequestDispatcher dispatcher(policy, dispatcher_machines,
                                       cfg_.dispatcher);
    for (std::size_t m = 0; m < n; ++m)
        dispatcher.setProfiles(m, profiles_[m]);

    // Response tracking (by app), gated to the window.
    ClusterPolicyResult result;
    bool measuring = false;
    std::map<std::string, std::size_t> type_to_app;
    std::map<std::string, util::RunningStat> response;
    auto track = [&](const os::RequestInfo &info) {
        if (!measuring)
            return;
        ++result.completed;
        auto it = type_to_app.find(info.type);
        if (it == type_to_app.end())
            return;
        response[cfg_.apps[it->second]].add(
            sim::toMillis(info.completed - info.created));
    };
    for (std::size_t m = 0; m < n; ++m)
        worlds[m]->requests().onComplete(track);

    for (const std::string &app_name : cfg_.apps)
        result.dispatched[app_name].assign(n, 0);

    double rate = offeredRatePerSec();
    sim::Rng rng(cfg_.seed + 70);
    std::function<void()> arrive = [&] {
        std::size_t a = rng.weightedIndex(arrivalShare_);
        std::string type = apps[0][a]->sampleType(rng);
        type_to_app.emplace(type, a);
        std::size_t m = dispatcher.dispatch(type, sim.now());
        os::RequestId id =
            worlds[m]->requests().create(type, sim.now());
        if (measuring)
            ++result.dispatched[cfg_.apps[a]][m];
        apps[m][a]->submit(id, type);
        sim.schedule(sim::secF(rng.exponential(1.0 / rate)), arrive);
    };

    // Quiet period: measure the preferred machine's non-request
    // (background) utilization for the workload-aware budget.
    sim.run(sim::sec(2));
    dispatcher.utilization(0);
    sim.run(sim.now() + sim::sec(1));
    dispatcher.setReservedUtilization(
        std::min(0.95, dispatcher.utilization(0)));

    sim.schedule(0, arrive);
    sim.run(sim.now() + cfg_.warmup);
    measuring = true;
    std::vector<double> energy0(n);
    for (std::size_t m = 0; m < n; ++m)
        energy0[m] = worlds[m]->machine().machineEnergyJ().value();
    sim::SimTime t0 = sim.now();
    sim.run(t0 + cfg_.window);
    double span = sim::toSeconds(sim.now() - t0);

    result.activeW.resize(n);
    for (std::size_t m = 0; m < n; ++m) {
        result.activeW[m] =
            (worlds[m]->machine().machineEnergyJ().value() -
             energy0[m]) /
                span -
            cfg_.machines[m].truth.machineIdleW;
    }
    for (const std::string &app_name : cfg_.apps)
        result.responseMs[app_name] =
            response.count(app_name) ? response[app_name].mean()
                                     : 0.0;
    return result;
}

} // namespace wl
} // namespace pcon
