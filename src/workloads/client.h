/**
 * @file
 * Load generation (the "test client that can send concurrent requests
 * to the server at a desired load level", Section 4.2). Two modes:
 *
 *  - ClosedLoop: a fixed number of outstanding requests; a completion
 *    triggers the next submission. Used for "peak load" (the server
 *    stays fully utilized without unbounded queues).
 *  - OpenLoop: Poisson arrivals at a fixed rate. Used for partial
 *    load levels ("half load" = ~50% utilization).
 */

#ifndef PCON_WORKLOADS_CLIENT_H
#define PCON_WORKLOADS_CLIENT_H

#include <map>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "sim/rng.h"
#include "util/stats.h"
#include "workloads/app.h"

namespace pcon {
namespace wl {

/** Client behaviour. */
struct ClientConfig
{
    enum class Mode { OpenLoop, ClosedLoop };

    Mode mode = Mode::ClosedLoop;
    /** Poisson arrival rate, requests/second (OpenLoop). */
    double ratePerSec = 0;
    /** Outstanding request count (ClosedLoop). */
    int concurrency = 8;
    /** RNG seed (arrivals and type sampling). */
    std::uint64_t seed = 7;
    /**
     * Optional explicit request-type mix (type -> weight). When
     * non-empty it overrides the app's own sampleType() — used to
     * drive *new* request compositions (Figure 10).
     */
    std::map<std::string, double> typeMix;
};

/**
 * Drives one ServerApp. start() begins generation; stop() stops new
 * submissions (in-flight requests drain naturally). Per-type
 * completion statistics accumulate for the experiment drivers.
 */
class LoadClient
{
  public:
    /**
     * @param app Deployed application to drive.
     * @param cfg Load level and mode.
     */
    LoadClient(ServerApp &app, os::Kernel &kernel,
               const ClientConfig &cfg);

    /** Begin submitting requests. */
    void start();

    /** Stop submitting new requests. */
    void stop();

    /** Requests submitted so far. */
    std::uint64_t submitted() const { return submitted_; }

    /** Requests completed so far. */
    std::uint64_t completed() const { return completed_; }

    /** Response-time statistics per request type (seconds). */
    const std::map<std::string, util::RunningStat> &
    responseStats() const
    {
        return responseStats_;
    }

    /** Response-time statistics across all types (seconds). */
    const util::RunningStat &overallResponse() const
    {
        return overallResponse_;
    }

    /**
     * Response-time percentile across all completions (seconds),
     * q in [0, 1]. Computed from retained samples (capped at
     * kMaxSamples; beyond that the estimate covers the earliest
     * completions). fatal() when no completions were recorded.
     */
    double responsePercentile(double q) const;

    /** Per-type response-time percentile (seconds). */
    double responsePercentile(const std::string &type,
                              double q) const;

    /** Reset completion statistics (e.g. after warm-up). */
    void clearStats();

    /**
     * Convenience: the closed-loop concurrency or open-loop rate for
     * a utilization target, sized from the app's mean service cycles.
     */
    static ClientConfig forUtilization(ServerApp &app,
                                       os::Kernel &kernel,
                                       double utilization,
                                       std::uint64_t seed = 7);

  private:
    void submitOne();
    void scheduleNextArrival();

    ServerApp &app_;
    os::Kernel &kernel_;
    ClientConfig cfg_;
    sim::Rng rng_;
    bool running_ = false;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::map<std::string, util::RunningStat> responseStats_;
    util::RunningStat overallResponse_;
    std::map<std::string, std::vector<double>> responseSamples_;

    /** Retained-sample cap per type (percentile accuracy bound). */
    static constexpr std::size_t kMaxSamples = 200000;
};

} // namespace wl
} // namespace pcon

#endif // PCON_WORKLOADS_CLIENT_H
