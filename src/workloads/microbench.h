/**
 * @file
 * Offline calibration microbenchmarks (Section 4.1): a suite of
 * patterns that stress different parts of the system — raw CPU spin,
 * high instruction rate, floating point, last-level cache, memory,
 * disk I/O, network I/O, and a mixture — each run at 100/75/50/25%
 * load. Each run collects machine-level (metrics, measured power)
 * calibration samples via a zero-delay offline wall meter.
 */

#ifndef PCON_WORKLOADS_MICROBENCH_H
#define PCON_WORKLOADS_MICROBENCH_H

#include <string>
#include <vector>

#include "core/calibration.h"
#include "hw/activity.h"
#include "hw/config.h"

namespace pcon {
namespace wl {

/** One calibration microbenchmark pattern. */
struct MicrobenchPattern
{
    std::string name;
    hw::ActivityVector activity;
    /** Issue periodic disk ops. */
    bool disk = false;
    /** Issue periodic NIC ops. */
    bool net = false;
};

/** The eight patterns of Section 4.1. */
const std::vector<MicrobenchPattern> &calibrationPatterns();

/** Calibration load levels (fraction of peak). */
const std::vector<double> &calibrationLoadLevels();

/** Tunables for a calibration run. */
struct CalibrationRunConfig
{
    /** Measured span per (pattern, level) run. */
    sim::SimTime duration = sim::sec(2);
    /** Sample/metering period. */
    sim::SimTime samplePeriod = sim::msec(100);
    /** Leading samples dropped as warm-up. */
    int warmupSamples = 2;
    /** Seed for task phase jitter. */
    std::uint64_t seed = 17;

    bool operator==(const CalibrationRunConfig &) const = default;
};

/**
 * Run the full suite against a fresh instance of the machine and
 * return the filled calibrator (one sample per metering window).
 *
 * @param labels When non-null, receives one "pattern@level" label
 *        per collected sample, aligned with the calibrator's sample
 *        order — input for core::evaluateCalibration.
 */
core::Calibrator
calibrateMachine(const hw::MachineConfig &machine,
                 const CalibrationRunConfig &cfg = {},
                 std::vector<std::string> *labels = nullptr);

/**
 * Fit the standard model for a machine: runs the suite and fits the
 * requested kind. The paper's Approach 1 uses CoreEventsOnly,
 * Approaches 2/3 use WithChipShare.
 */
core::LinearPowerModel
calibrateModel(const hw::MachineConfig &machine, core::ModelKind kind,
               double *rmse_w = nullptr,
               const CalibrationRunConfig &cfg = {});

/**
 * Convert full-power calibration samples to active-power samples (for
 * the online recalibrator, which fits active coefficients only).
 */
std::vector<core::CalibrationSample>
toActiveSamples(const core::Calibrator &calibrator, double idle_w);

} // namespace wl
} // namespace pcon

#endif // PCON_WORKLOADS_MICROBENCH_H
