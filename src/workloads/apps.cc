#include "apps.h"

#include <algorithm>
#include <cmath>

#include "workloads/event_loop_app.h"

#include "util/logging.h"

namespace pcon {
namespace wl {

using hw::ActivityVector;
using os::ComputeOp;
using os::IoOp;
using os::Op;

double
cycleFactor(const std::map<std::string, double> &factors,
            const std::string &machine)
{
    auto it = factors.find(machine);
    return it == factors.end() ? 1.0 : it->second;
}

namespace {

// Resource-activity signatures (per non-halt cycle).
// Larger RSA keys run denser arithmetic with more cache pressure, so
// the three request types differ in power density, not just length.
const ActivityVector kRsaSmallActivity{1.6, 0.0, 0.001, 0.0001};
const ActivityVector kRsaMediumActivity{1.8, 0.0, 0.002, 0.0002};
const ActivityVector kRsaLargeActivity{2.4, 0.0, 0.012, 0.0012};
const ActivityVector kSolrActivity{1.3, 0.0, 0.035, 0.003};
const ActivityVector kPhpActivity{1.4, 0.0, 0.02, 0.001};
const ActivityVector kMysqlActivity{1.1, 0.0, 0.05, 0.006};
const ActivityVector kLatexActivity{1.6, 0.8, 0.025, 0.0012};
const ActivityVector kDvipngActivity{1.2, 0.0, 0.04, 0.004};
const ActivityVector kRenderActivity{1.3, 0.0, 0.015, 0.001};
const ActivityVector kStressActivity{1.5, 0.4, 0.05, 0.01};
const ActivityVector kVosaoActivity{1.5, 0.0, 0.03, 0.003};
const ActivityVector kVirusActivity{2.2, 0.0, 0.08, 0.016};
const ActivityVector kGaeBackgroundActivity{1.4, 0.0, 0.03, 0.002};

// Per-machine cycle factors (SandyBridge = 1.0). Compute-bound work
// benefits most from the newer microarchitecture; the memory-bound
// Stress workload barely does.
const std::map<std::string, double> kRsaFactors{
    {"Woodcrest", 2.3}, {"Westmere", 1.35}};
const std::map<std::string, double> kSolrFactors{
    {"Woodcrest", 1.5}, {"Westmere", 1.2}};
const std::map<std::string, double> kWwFactors{
    {"Woodcrest", 1.6}, {"Westmere", 1.25}};
const std::map<std::string, double> kStressFactors{
    {"Woodcrest", 0.95}, {"Westmere", 1.0}};
// GAE's managed-runtime work is less core-bound than raw crypto, so
// it ports to the older machine with a milder cycle penalty.
const std::map<std::string, double> kGaeFactors{
    {"Woodcrest", 1.15}, {"Westmere", 1.1}};

// RSA request cycles by key size (SandyBridge).
constexpr double kRsaSmallCycles = 18e6;
constexpr double kRsaMediumCycles = 30e6;
constexpr double kRsaLargeCycles = 48e6;

constexpr double kSolrMeanCycles = 25e6;
constexpr double kSolrSigma = 0.9;

constexpr double kStressCycles = 310e6; // ~100 ms at 3.1 GHz

constexpr double kVosaoReadCycles = 12e6;
constexpr double kVosaoWriteCycles = 18e6;
constexpr double kVirusCycles = 310e6;  // ~100 ms at 3.1 GHz

} // namespace

// ----------------------------- RSA-crypto --------------------------

RsaCryptoApp::RsaCryptoApp(std::uint64_t seed)
    : WorkerPoolApp("RSA-crypto"), rng_(seed)
{}

void
RsaCryptoApp::onDeploy(os::Kernel &kernel)
{
    factor_ = cycleFactor(kRsaFactors, kernel.machine().config().name);
}

std::string
RsaCryptoApp::sampleType(sim::Rng &rng)
{
    switch (rng.uniformInt(0, 2)) {
      case 0: return "rsa-small";
      case 1: return "rsa-medium";
      default: return "rsa-large";
    }
}

double
RsaCryptoApp::meanServiceCycles() const
{
    return (kRsaSmallCycles + kRsaMediumCycles + kRsaLargeCycles) /
        3.0 * factor_;
}

std::vector<Op>
RsaCryptoApp::makePlan(const std::string &type, std::size_t worker)
{
    (void)worker;
    double cycles = kRsaMediumCycles;
    ActivityVector activity = kRsaMediumActivity;
    if (type == "rsa-small") {
        cycles = kRsaSmallCycles;
        activity = kRsaSmallActivity;
    } else if (type == "rsa-large") {
        cycles = kRsaLargeCycles;
        activity = kRsaLargeActivity;
    } else {
        util::fatalIf(type != "rsa-medium",
                      "unknown RSA request type: ", type);
    }
    return {ComputeOp{activity, cycles * factor_}};
}

// ------------------------------- Solr ------------------------------

SolrApp::SolrApp(std::uint64_t seed)
    : WorkerPoolApp("Solr"), rng_(seed)
{}

void
SolrApp::onDeploy(os::Kernel &kernel)
{
    factor_ = cycleFactor(kSolrFactors,
                          kernel.machine().config().name);
}

std::string
SolrApp::sampleType(sim::Rng &rng)
{
    (void)rng;
    return "solr";
}

double
SolrApp::meanServiceCycles() const
{
    return kSolrMeanCycles * factor_;
}

std::vector<Op>
SolrApp::makePlan(const std::string &type, std::size_t worker)
{
    (void)worker;
    util::fatalIf(type != "solr", "unknown Solr request type: ", type);
    // Long-tailed service time: queries range from single-term hits
    // to deep multi-term scans of the Wikipedia index.
    double mu = std::log(kSolrMeanCycles) -
        kSolrSigma * kSolrSigma / 2.0;
    double cycles =
        std::clamp(rng_.lognormal(mu, kSolrSigma), 2e6, 4e8);
    return {ComputeOp{kSolrActivity, cycles * factor_}};
}

// ------------------------------ WeBWorK ----------------------------

WeBWorKApp::WeBWorKApp(std::uint64_t seed)
    : WorkerPoolApp("WeBWorK"), rng_(seed)
{}

std::string
WeBWorKApp::bucketType(int bucket)
{
    return "ww-b" + std::to_string(bucket);
}

void
WeBWorKApp::onDeploy(os::Kernel &kernel)
{
    factor_ = cycleFactor(kWwFactors, kernel.machine().config().name);
    // One persistent MySQL connection and thread per httpd worker.
    mysqlSockets_.resize(workerCount());
    mysqlScale_.assign(workerCount(), 1.0);
    for (std::size_t i = 0; i < workerCount(); ++i) {
        auto [httpd_end, mysql_end] = kernel.socketPair();
        mysqlSockets_[i] = httpd_end;
        // MySQL thread: serve queries forever on this connection.
        auto logic = std::make_shared<os::ScriptedLogic>(
            std::vector<os::ScriptedLogic::Step>{
                [mysql_end = mysql_end](os::Kernel &, os::Task &,
                                        const os::OpResult &) -> Op {
                    return os::RecvOp{mysql_end};
                },
                [this, i](os::Kernel &, os::Task &,
                          const os::OpResult &) -> Op {
                    return ComputeOp{kMysqlActivity,
                                     rng_.uniform(8e6, 16e6) *
                                         mysqlScale_[i]};
                },
                [mysql_end = mysql_end](os::Kernel &, os::Task &,
                                        const os::OpResult &) -> Op {
                    return os::SendOp{mysql_end, 2048};
                }},
            /*loop=*/true);
        kernel.spawn(logic, "mysqld-" + std::to_string(i));
    }
}

double
WeBWorKApp::bucketCycles(int bucket) const
{
    // Difficulty scale 0.5 .. 3.25 across buckets. PHP/MySQL/dvipng
    // stages grow linearly with difficulty; latex typesetting grows
    // quadratically, so harder problem sets are also relatively more
    // FP-heavy (different power density, not just longer).
    double scale = 0.5 + 0.25 * bucket;
    return (80e6 * scale + 32e6 * scale * scale) * factor_;
}

std::string
WeBWorKApp::sampleType(sim::Rng &rng)
{
    // Zipfian problem-set popularity.
    return bucketType(static_cast<int>(rng.zipf(NumBuckets, 1.1)));
}

double
WeBWorKApp::meanServiceCycles() const
{
    // Zipf(theta=1.1) weighted mean of the bucket scales.
    double weight_sum = 0.0, mean = 0.0;
    for (int b = 0; b < NumBuckets; ++b) {
        double w = 1.0 / std::pow(b + 1, 1.1);
        weight_sum += w;
        mean += w * bucketCycles(b);
    }
    return mean / weight_sum;
}

std::vector<Op>
WeBWorKApp::makePlan(const std::string &type, std::size_t worker)
{
    int bucket = -1;
    for (int b = 0; b < NumBuckets; ++b)
        if (type == bucketType(b))
            bucket = b;
    util::fatalIf(bucket < 0, "unknown WeBWorK request type: ", type);
    double scale = (0.5 + 0.25 * bucket) * factor_;
    os::Socket *mysql = mysqlSockets_[worker];
    mysqlScale_[worker] = scale;

    // Latex grows quadratically with difficulty (see bucketCycles).
    double plain = (0.5 + 0.25 * bucket);
    double latex_cycles = 32e6 * plain * plain * factor_;

    // The Figure 4 anatomy: PHP -> MySQL round trip -> PHP -> fork
    // latex -> fork dvipng -> disk write -> final rendering.
    return {
        ComputeOp{kPhpActivity, 24e6 * scale},
        os::SendOp{mysql, 512},
        os::RecvOp{mysql},
        ComputeOp{kPhpActivity, 16e6 * scale},
        os::ForkOp{std::make_shared<os::ScriptedLogic>(
                       std::vector<os::ScriptedLogic::Step>{
                           [latex_cycles](os::Kernel &, os::Task &,
                                          const os::OpResult &) -> Op {
                               return ComputeOp{kLatexActivity,
                                                latex_cycles};
                           }}),
                   "latex"},
        os::WaitChildOp{os::NoTask}, // filled from the fork result
        os::ForkOp{std::make_shared<os::ScriptedLogic>(
                       std::vector<os::ScriptedLogic::Step>{
                           [scale](os::Kernel &, os::Task &,
                                   const os::OpResult &) -> Op {
                               return ComputeOp{kDvipngActivity,
                                                20e6 * scale};
                           }}),
                   "dvipng"},
        os::WaitChildOp{os::NoTask},
        IoOp{hw::DeviceKind::Disk, 200e3},
        ComputeOp{kRenderActivity, 8e6 * scale},
    };
}

// ------------------------------- Stress ----------------------------

StressApp::StressApp(std::uint64_t seed)
    : WorkerPoolApp("Stress"), rng_(seed)
{}

void
StressApp::onDeploy(os::Kernel &kernel)
{
    factor_ = cycleFactor(kStressFactors,
                          kernel.machine().config().name);
}

std::string
StressApp::sampleType(sim::Rng &rng)
{
    (void)rng;
    return "stress";
}

double
StressApp::meanServiceCycles() const
{
    return kStressCycles * factor_;
}

std::vector<Op>
StressApp::makePlan(const std::string &type, std::size_t worker)
{
    (void)worker;
    util::fatalIf(type != "stress", "unknown Stress request type: ",
                  type);
    double jitter = rng_.uniform(0.9, 1.1);
    return {ComputeOp{kStressActivity,
                      kStressCycles * factor_ * jitter}};
}

// ----------------------------- GAE-Vosao ---------------------------

GaeVosaoApp::GaeVosaoApp(std::uint64_t seed)
    : WorkerPoolApp("GAE-Vosao"), rng_(seed)
{}

void
GaeVosaoApp::onDeploy(os::Kernel &kernel)
{
    factor_ = cycleFactor(kGaeFactors, kernel.machine().config().name);
    // GAE platform background processing: periodic tasks bound to no
    // request context. They charge the background container and make
    // up a large minority of system activity (Figure 9).
    int background_tasks =
        std::max(2, kernel.machine().totalCores());
    for (int i = 0; i < background_tasks; ++i) {
        auto logic = std::make_shared<os::ScriptedLogic>(
            std::vector<os::ScriptedLogic::Step>{
                [this](os::Kernel &, os::Task &,
                       const os::OpResult &) -> Op {
                    return ComputeOp{kGaeBackgroundActivity,
                                     rng_.uniform(6e6, 12e6) *
                                         factor_};
                },
                [this](os::Kernel &, os::Task &,
                       const os::OpResult &) -> Op {
                    return os::SleepOp{sim::usec(
                        rng_.uniformInt(3000, 8000))};
                }},
            /*loop=*/true);
        kernel.spawn(logic, "gae-background-" + std::to_string(i));
    }
}

std::string
GaeVosaoApp::sampleType(sim::Rng &rng)
{
    // 9:1 read/write mix.
    return rng.chance(0.9) ? "vosao-read" : "vosao-write";
}

double
GaeVosaoApp::meanServiceCycles() const
{
    return (0.9 * kVosaoReadCycles + 0.1 * kVosaoWriteCycles) *
        factor_;
}

std::vector<Op>
GaeVosaoApp::makePlan(const std::string &type, std::size_t worker)
{
    (void)worker;
    double jitter = rng_.uniform(0.7, 1.3);
    if (type == "vosao-read") {
        return {ComputeOp{kVosaoActivity,
                          kVosaoReadCycles * factor_ * jitter}};
    }
    util::fatalIf(type != "vosao-write",
                  "unknown Vosao request type: ", type);
    return {
        ComputeOp{kVosaoActivity,
                  kVosaoWriteCycles * 0.7 * factor_ * jitter},
        IoOp{hw::DeviceKind::Disk, 50e3}, // datastore write
        ComputeOp{kVosaoActivity,
                  kVosaoWriteCycles * 0.3 * factor_ * jitter},
    };
}

// ----------------------------- GAE-Hybrid --------------------------

GaeHybridApp::GaeHybridApp(std::uint64_t seed)
    : WorkerPoolApp("GAE-Hybrid"), rng_(seed)
{}

void
GaeHybridApp::onDeploy(os::Kernel &kernel)
{
    factor_ = cycleFactor(kGaeFactors, kernel.machine().config().name);
}

std::string
GaeHybridApp::sampleType(sim::Rng &rng)
{
    // Approximately half the *load* (busy cycles) from viruses: a
    // virus costs ~24x a mean Vosao request, so ~1 in 25 arrivals.
    if (rng.chance(0.04))
        return virusType();
    return rng.chance(0.9) ? "vosao-read" : "vosao-write";
}

double
GaeHybridApp::meanServiceCycles() const
{
    double vosao =
        0.9 * kVosaoReadCycles + 0.1 * kVosaoWriteCycles;
    return (0.96 * vosao + 0.04 * kVirusCycles) * factor_;
}

std::vector<Op>
GaeHybridApp::makePlan(const std::string &type, std::size_t worker)
{
    (void)worker;
    if (type == virusType()) {
        // ~200 lines of Java rewriting one of every four bytes over a
        // 16 MB block: pipeline + cache + memory simultaneously hot.
        double jitter = rng_.uniform(0.9, 1.1);
        return {ComputeOp{kVirusActivity,
                          kVirusCycles * factor_ * jitter}};
    }
    double jitter = rng_.uniform(0.7, 1.3);
    if (type == "vosao-read")
        return {ComputeOp{kVosaoActivity,
                          kVosaoReadCycles * factor_ * jitter}};
    util::fatalIf(type != "vosao-write",
                  "unknown GAE-Hybrid request type: ", type);
    return {
        ComputeOp{kVosaoActivity,
                  kVosaoWriteCycles * 0.7 * factor_ * jitter},
        IoOp{hw::DeviceKind::Disk, 50e3},
        ComputeOp{kVosaoActivity,
                  kVosaoWriteCycles * 0.3 * factor_ * jitter},
    };
}

// ------------------------------ factory ----------------------------

std::unique_ptr<ServerApp>
makeApp(const std::string &name, std::uint64_t seed)
{
    if (name == "RSA-crypto")
        return std::make_unique<RsaCryptoApp>(seed);
    if (name == "Solr")
        return std::make_unique<SolrApp>(seed);
    if (name == "WeBWorK")
        return std::make_unique<WeBWorKApp>(seed);
    if (name == "Stress")
        return std::make_unique<StressApp>(seed);
    if (name == "GAE-Vosao")
        return std::make_unique<GaeVosaoApp>(seed);
    if (name == "GAE-Hybrid")
        return std::make_unique<GaeHybridApp>(seed);
    if (name == "EventLoop")
        return std::make_unique<EventLoopApp>(seed);
    util::fatal("unknown workload: ", name);
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names{
        "RSA-crypto", "Solr", "WeBWorK",
        "Stress",     "GAE-Vosao", "GAE-Hybrid"};
    return names;
}

} // namespace wl
} // namespace pcon
