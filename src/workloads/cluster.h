/**
 * @file
 * Heterogeneous-cluster experiment harness (Sections 3.4 and 4.4):
 * several simulated machines share one event stream; applications are
 * deployed on every machine; per-type energy profiles are learned
 * with power containers on each machine; and a mixed request stream
 * is routed by a RequestDispatcher under a chosen policy while
 * energy and response times are measured. This is the machinery
 * behind Figure 14 / Table 1, packaged for reuse.
 */

#ifndef PCON_WORKLOADS_CLUSTER_H
#define PCON_WORKLOADS_CLUSTER_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/distribution.h"
#include "core/profiles.h"
#include "workloads/apps.h"
#include "workloads/experiment.h"

namespace pcon {
namespace wl {

/** Configuration of a cluster experiment. */
struct ClusterExperimentConfig
{
    /** Machines, most energy-efficient first. */
    std::vector<hw::MachineConfig> machines;
    /** Calibrated model per machine (same order). */
    std::vector<std::shared_ptr<core::LinearPowerModel>> models;
    /** Application names deployed on every machine. */
    std::vector<std::string> apps;
    /**
     * Target share of offered *busy-cycle load* per app (summing to
     * 1); the paper's case study uses ~50/50 GAE-Vosao / RSA-crypto.
     */
    std::vector<double> appLoadShare;
    /**
     * Offered volume as a multiple of the slowest machine's probed
     * mixed-workload capacity — the "maximum volume supported under
     * simple load balance" knob.
     */
    double offeredOverSlowestCapacity = 2.2;
    /** Dispatcher tunables. */
    core::DispatcherConfig dispatcher{};
    /** Quiet + warm-up spans before the measurement window. */
    sim::SimTime warmup = sim::sec(6);
    /** Measurement window. */
    sim::SimTime window = sim::sec(25);
    /** Span of each per-machine profiling run. */
    sim::SimTime profilingSpan = sim::sec(15);
    /** Span of the slowest-machine capacity probe. */
    sim::SimTime probeSpan = sim::sec(10);
    /** Base seed. */
    std::uint64_t seed = 140;
};

/** Results of one policy run. */
struct ClusterPolicyResult
{
    /** Measured active power per machine, Watts. */
    std::vector<double> activeW;
    /** Mean response time per app name, milliseconds. */
    std::map<std::string, double> responseMs;
    /** Requests dispatched to each machine per app name. */
    std::map<std::string, std::vector<std::uint64_t>> dispatched;
    /** Completions inside the window. */
    std::uint64_t completed = 0;

    /** Sum of per-machine active power. */
    double
    totalActiveW() const
    {
        double total = 0;
        for (double w : activeW)
            total += w;
        return total;
    }
};

/**
 * The harness. Construction probes the slowest machine's capacity
 * and container-profiles every app on every machine; run() then
 * executes one policy end to end.
 */
class ClusterExperiment
{
  public:
    explicit ClusterExperiment(ClusterExperimentConfig cfg);

    /** Execute one distribution policy. */
    ClusterPolicyResult run(core::DistributionPolicy policy);

    /** Learned per-type profiles of one machine. */
    const core::ProfileTable &profiles(std::size_t machine) const;

    /** Probed mixed-workload capacity of the slowest machine. */
    double slowestCapacityPerSec() const { return slowestCapacity_; }

    /** Offered request rate used by run(). */
    double offeredRatePerSec() const;

    /** Arrival probability of each app in the mixed stream. */
    const std::vector<double> &appArrivalShare() const
    {
        return arrivalShare_;
    }

  private:
    double probeCapacity(std::size_t machine) const;
    core::ProfileTable profileMachine(std::size_t machine,
                                      const std::string &app) const;

    ClusterExperimentConfig cfg_;
    std::vector<core::ProfileTable> profiles_;
    std::vector<double> arrivalShare_;
    double slowestCapacity_ = 0;
};

} // namespace wl
} // namespace pcon

#endif // PCON_WORKLOADS_CLUSTER_H
