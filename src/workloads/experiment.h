/**
 * @file
 * Shared experiment harness: one ServerWorld bundles a simulated
 * machine, its kernel, the power-container facility, and the power
 * meters, with helpers to measure validation windows — the common
 * skeleton of every figure/table reproduction in bench/.
 */

#ifndef PCON_WORKLOADS_EXPERIMENT_H
#define PCON_WORKLOADS_EXPERIMENT_H

#include <memory>
#include <optional>

#include "core/container_manager.h"
#include "core/recalibration.h"
#include "hw/machine.h"
#include "hw/power_meter.h"
#include "os/kernel.h"
#include "workloads/microbench.h"

namespace pcon {
namespace wl {

/**
 * A complete single-machine experiment world. Construction wires the
 * container manager into the kernel; meters exist but only start
 * when asked.
 */
class ServerWorld
{
  public:
    /**
     * @param machine_cfg Platform to instantiate.
     * @param model Calibrated power model (shared; recalibration
     *        updates it in place).
     * @param manager_cfg Container-engine tunables.
     */
    ServerWorld(const hw::MachineConfig &machine_cfg,
                std::shared_ptr<core::LinearPowerModel> model,
                const core::ContainerManagerConfig &manager_cfg = {});

    /**
     * Same, on an externally owned simulation — lets several worlds
     * (a heterogeneous cluster) share one event stream.
     */
    ServerWorld(sim::Simulation &external_sim,
                const hw::MachineConfig &machine_cfg,
                std::shared_ptr<core::LinearPowerModel> model,
                const core::ContainerManagerConfig &manager_cfg = {});

    sim::Simulation &sim() { return sim_; }
    hw::Machine &machine() { return machine_; }
    os::Kernel &kernel() { return kernel_; }
    os::RequestContextManager &requests() { return requests_; }
    core::ContainerManager &manager() { return manager_; }
    std::shared_ptr<core::LinearPowerModel> model() { return model_; }

    /** The external wall meter (Wattsup-style). */
    hw::PowerMeter &wattsup() { return wattsup_; }

    /** The on-chip meter; fatal() if this platform has none. */
    hw::PowerMeter &onChipMeter();

    /** True when the platform exposes an on-chip meter. */
    bool hasOnChipMeter() const { return onChip_.has_value(); }

    /**
     * Attach measurement-aligned online recalibration (Approach 3).
     * Uses the on-chip meter when present, the wall meter otherwise.
     * @param offline_active Offline calibration samples expressed as
     *        active power (see toActiveSamples).
     */
    void attachRecalibration(
        std::vector<core::CalibrationSample> offline_active,
        const core::RecalibratorConfig &cfg_overrides = {});

    /** The recalibrator, when attached. */
    core::OnlineRecalibrator *recalibrator()
    {
        return recalibrator_ ? recalibrator_.get() : nullptr;
    }

    /** Run the simulation forward by `span`. */
    void run(sim::SimTime span) { sim_.run(sim_.now() + span); }

    /**
     * Ground-truth average active power over a measurement window:
     * open a window now with beginWindow(), run the sim, then call
     * measuredActiveW().
     */
    void beginWindow();

    /** Average measured active power since beginWindow(), Watts. */
    double measuredActiveW();

    /** Container-accounted average power since beginWindow(), Watts. */
    double accountedActiveW();

    /**
     * Figure 8's validation error:
     * |aggregate profiled request power - measured active power| /
     * measured active power.
     */
    double validationError();

  private:
    /** Owns the simulation unless an external one was supplied. */
    std::unique_ptr<sim::Simulation> ownedSim_;
    sim::Simulation &sim_;
    hw::Machine machine_;
    os::RequestContextManager requests_;
    os::Kernel kernel_;
    std::shared_ptr<core::LinearPowerModel> model_;
    core::ContainerManager manager_;
    hw::PowerMeter wattsup_;
    std::optional<hw::PowerMeter> onChip_;
    std::unique_ptr<core::ModelPowerSampler> sampler_;
    std::unique_ptr<core::OnlineRecalibrator> recalibrator_;

    sim::SimTime windowStart_ = 0;
    util::Joules windowStartEnergyJ_{0};
    util::Joules windowStartAccountedJ_{0};
};

/**
 * Measure a meter's idle reading for a platform (the baseline the
 * recalibrator subtracts): run an idle instance briefly and average.
 */
double measureIdleBaselineW(const hw::MachineConfig &machine_cfg,
                            hw::MeterScope scope);

} // namespace wl
} // namespace pcon

#endif // PCON_WORKLOADS_EXPERIMENT_H
