#include "event_loop_app.h"

#include <algorithm>

#include "util/logging.h"

namespace pcon {
namespace wl {

namespace {

const hw::ActivityVector kLoopActivity{1.4, 0.0, 0.02, 0.002};

} // namespace

EventLoopApp::EventLoopApp(std::uint64_t seed) : rng_(seed) {}

void
EventLoopApp::deploy(os::Kernel &kernel)
{
    util::panicIf(kernel_ != nullptr, "EventLoop deployed twice");
    kernel_ = &kernel;
    int loops = kernel.machine().totalCores();
    loops_.resize(static_cast<std::size_t>(loops));
    for (std::size_t i = 0; i < loops_.size(); ++i) {
        auto [app_end, loop_end] = kernel.socketPair();
        loops_[i].appEnd = app_end;
        loops_[i].loopEnd = loop_end;
        // Responses flow back but completion is driven by the
        // application's own bookkeeping (finished()): under the
        // untracked ablation the kernel-side response tags are wrong
        // by construction, which is the point of the experiment.
        app_end->setDeliveryCallback([](double, os::RequestId) {});
        loops_[i].task = kernel.spawn(
            std::make_shared<EventLoopLogic>(*this, i),
            "evloop-" + std::to_string(i));
    }
}

std::string
EventLoopApp::sampleType(sim::Rng &rng)
{
    return rng.chance(0.5) ? cheapType() : dearType();
}

double
EventLoopApp::meanServiceCycles() const
{
    return phase1Cycles +
        (cheapPhase2Cycles + dearPhase2Cycles) / 2.0;
}

void
EventLoopApp::submit(os::RequestId id, const std::string &type)
{
    util::panicIf(kernel_ == nullptr, "EventLoop not deployed");
    double phase2 = cheapPhase2Cycles;
    if (type == dearType())
        phase2 = dearPhase2Cycles;
    else
        util::fatalIf(type != cheapType(),
                      "unknown event-loop request type: ", type);
    phase2_[id] = phase2;
    Loop &loop = loops_[nextLoop_++ % loops_.size()];
    loop.appEnd->send(256, id);
}

void
EventLoopApp::finished(os::RequestId id)
{
    phase2_.erase(id);
    kernel_->requests().complete(id, kernel_->simulation().now());
}

os::Op
EventLoopLogic::next(os::Kernel &kernel, os::Task &self,
                     const os::OpResult &last)
{
    (void)self;
    (void)kernel;
    EventLoopApp::Loop &loop = app_.loops_[loop_];

    switch (state_) {
      case State::Idle:
        break; // decide below

      case State::Phase1: {
        // The read phase finished: park the continuation until its
        // asynchronous backend work "completes".
        auto it = app_.phase2_.find(current_);
        double cycles = it != app_.phase2_.end()
            ? it->second
            : EventLoopApp::cheapPhase2Cycles;
        parked_.push_back(Parked{current_, cycles,
                                 kernel.simulation().now() +
                                     EventLoopApp::backendDelay});
        current_ = os::NoRequest;
        state_ = State::Idle;
        break;
      }

      case State::Switching:
        // The user-level switch happened (trapped or not): run the
        // resumed continuation.
        state_ = State::Phase2;
        return os::ComputeOp{kLoopActivity, parked_.front().cycles};

      case State::Phase2: {
        // Continuation done: respond and retire the request.
        os::RequestId done = parked_.front().id;
        parked_.pop_front();
        state_ = State::Responding;
        app_.finished(done);
        return os::SendOp{loop.loopEnd, 512};
      }

      case State::Responding:
        state_ = State::Idle;
        break;
    }

    // Idle scheduling: resume the oldest *ready* continuation;
    // otherwise read new work; otherwise poll-sleep until a parked
    // continuation becomes ready (event loops multiplex on timers).
    sim::SimTime now = kernel.simulation().now();
    if (last.kind == os::OpResult::Kind::Received) {
        // A new request was read: its tag rebound the task context.
        current_ = last.context;
        state_ = State::Phase1;
        return os::ComputeOp{kLoopActivity,
                             EventLoopApp::phase1Cycles};
    }
    if (!parked_.empty() && parked_.front().readyAt <= now) {
        state_ = State::Switching;
        return os::UserSwitchOp{parked_.front().id};
    }
    if (!loop.loopEnd->buffered().empty() || parked_.empty())
        return os::RecvOp{loop.loopEnd};
    // Parked but not ready, and no pending messages: short timer.
    return os::SleepOp{
        std::max<sim::SimTime>(sim::usec(100),
                               parked_.front().readyAt - now)};
}

} // namespace wl
} // namespace pcon
