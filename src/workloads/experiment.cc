#include "experiment.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace pcon {
namespace wl {

ServerWorld::ServerWorld(const hw::MachineConfig &machine_cfg,
                         std::shared_ptr<core::LinearPowerModel> model,
                         const core::ContainerManagerConfig &manager_cfg)
    : ownedSim_(std::make_unique<sim::Simulation>()),
      sim_(*ownedSim_), machine_(sim_, machine_cfg),
      kernel_(machine_, requests_), model_(std::move(model)),
      manager_(kernel_, model_, manager_cfg),
      wattsup_(machine_, hw::MeterScope::Machine,
               machine_cfg.wattsupMeter)
{
    kernel_.addHooks(&manager_);
    if (machine_cfg.hasOnChipMeter)
        onChip_.emplace(machine_, hw::MeterScope::Package,
                        machine_cfg.onChipMeter);
}

ServerWorld::ServerWorld(sim::Simulation &external_sim,
                         const hw::MachineConfig &machine_cfg,
                         std::shared_ptr<core::LinearPowerModel> model,
                         const core::ContainerManagerConfig &manager_cfg)
    : sim_(external_sim), machine_(sim_, machine_cfg),
      kernel_(machine_, requests_), model_(std::move(model)),
      manager_(kernel_, model_, manager_cfg),
      wattsup_(machine_, hw::MeterScope::Machine,
               machine_cfg.wattsupMeter)
{
    kernel_.addHooks(&manager_);
    if (machine_cfg.hasOnChipMeter)
        onChip_.emplace(machine_, hw::MeterScope::Package,
                        machine_cfg.onChipMeter);
}

hw::PowerMeter &
ServerWorld::onChipMeter()
{
    util::fatalIf(!onChip_.has_value(), machine_.config().name,
                  " has no on-chip power meter");
    return *onChip_;
}

void
ServerWorld::attachRecalibration(
    std::vector<core::CalibrationSample> offline_active,
    const core::RecalibratorConfig &cfg_overrides)
{
    util::fatalIf(recalibrator_ != nullptr,
                  "recalibration already attached");
    hw::PowerMeter &meter =
        hasOnChipMeter() ? onChipMeter() : wattsup_;
    hw::MeterScope scope = hasOnChipMeter() ? hw::MeterScope::Package
                                            : hw::MeterScope::Machine;

    core::RecalibratorConfig cfg = cfg_overrides;
    if (cfg.baselineW == 0)
        cfg.baselineW = measureIdleBaselineW(machine_.config(), scope);
    if (!hasOnChipMeter()) {
        // Wall meters report once per second with seconds of lag:
        // scan a few reporting periods, refit on a matching cadence,
        // and accept a fit after a handful of coarse samples.
        core::RecalibratorConfig defaults;
        if (cfg.maxDelaySamples == defaults.maxDelaySamples)
            cfg.maxDelaySamples = 8;
        if (cfg.refitEvery == defaults.refitEvery)
            cfg.refitEvery = sim::msec(500);
        if (cfg.minOnlineSamples == defaults.minOnlineSamples)
            cfg.minOnlineSamples = 6;
        if (cfg.alignEvery == defaults.alignEvery)
            cfg.alignEvery = sim::sec(2);
    }

    sampler_ = std::make_unique<core::ModelPowerSampler>(
        kernel_, model_, meter.period());
    recalibrator_ = std::make_unique<core::OnlineRecalibrator>(
        *sampler_, meter, model_, std::move(offline_active), cfg);
    sampler_->start();
    meter.start();
    recalibrator_->start();
}

void
ServerWorld::beginWindow()
{
    windowStart_ = sim_.now();
    windowStartEnergyJ_ = machine_.machineEnergyJ();
    windowStartAccountedJ_ = manager_.accountedEnergyJ();
}

double
ServerWorld::measuredActiveW()
{
    double span_s = sim::toSeconds(sim_.now() - windowStart_);
    util::fatalIf(span_s <= 0, "empty measurement window");
    double avg_full =
        (machine_.machineEnergyJ() - windowStartEnergyJ_).value() /
        span_s;
    return avg_full - machine_.config().truth.machineIdleW;
}

double
ServerWorld::accountedActiveW()
{
    double span_s = sim::toSeconds(sim_.now() - windowStart_);
    util::fatalIf(span_s <= 0, "empty measurement window");
    return (manager_.accountedEnergyJ() - windowStartAccountedJ_)
               .value() /
        span_s;
}

double
ServerWorld::validationError()
{
    double measured = measuredActiveW();
    util::fatalIf(measured <= 0, "no active power in window");
    return std::abs(accountedActiveW() - measured) / measured;
}

double
measureIdleBaselineW(const hw::MachineConfig &machine_cfg,
                     hw::MeterScope scope)
{
    sim::Simulation sim;
    hw::Machine machine(sim, machine_cfg);
    sim::SimTime period = scope == hw::MeterScope::Package
                              ? machine_cfg.onChipMeter.period
                              : machine_cfg.wattsupMeter.period;
    hw::PowerMeter meter(machine, scope, {period, 0});
    util::RunningStat watts;
    meter.subscribe([&](const hw::PowerMeter::Sample &s) {
        watts.add(s.watts.value());
    });
    meter.start();
    sim.run(period * 20);
    return watts.mean();
}

} // namespace wl
} // namespace pcon
