#include "client.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pcon {
namespace wl {

LoadClient::LoadClient(ServerApp &app, os::Kernel &kernel,
                       const ClientConfig &cfg)
    : app_(app), kernel_(kernel), cfg_(cfg), rng_(cfg.seed)
{
    util::fatalIf(cfg.mode == ClientConfig::Mode::OpenLoop &&
                      cfg.ratePerSec <= 0,
                  "open-loop client needs a positive rate");
    util::fatalIf(cfg.mode == ClientConfig::Mode::ClosedLoop &&
                      cfg.concurrency <= 0,
                  "closed-loop client needs positive concurrency");
    // Completion notifications: track response times per type.
    kernel_.requests().onComplete([this](const os::RequestInfo &info) {
        ++completed_;
        double seconds =
            sim::toSeconds(info.completed - info.created);
        responseStats_[info.type].add(seconds);
        overallResponse_.add(seconds);
        std::vector<double> &samples = responseSamples_[info.type];
        if (samples.size() < kMaxSamples)
            samples.push_back(seconds);
        if (running_ && cfg_.mode == ClientConfig::Mode::ClosedLoop)
            submitOne();
    });
}

void
LoadClient::start()
{
    if (running_)
        return;
    running_ = true;
    if (cfg_.mode == ClientConfig::Mode::ClosedLoop) {
        for (int i = 0; i < cfg_.concurrency; ++i)
            submitOne();
    } else {
        scheduleNextArrival();
    }
}

void
LoadClient::stop()
{
    running_ = false;
}

void
LoadClient::clearStats()
{
    responseStats_.clear();
    overallResponse_.reset();
    responseSamples_.clear();
}

double
LoadClient::responsePercentile(double q) const
{
    std::vector<double> all;
    for (const auto &[type, samples] : responseSamples_)
        all.insert(all.end(), samples.begin(), samples.end());
    util::fatalIf(all.empty(), "no completions recorded");
    return util::quantile(std::move(all), q);
}

double
LoadClient::responsePercentile(const std::string &type,
                               double q) const
{
    auto it = responseSamples_.find(type);
    util::fatalIf(it == responseSamples_.end() || it->second.empty(),
                  "no completions recorded for type '", type, "'");
    return util::quantile(it->second, q);
}

void
LoadClient::submitOne()
{
    std::string type;
    if (!cfg_.typeMix.empty()) {
        std::vector<double> weights;
        std::vector<const std::string *> names;
        for (const auto &[name, weight] : cfg_.typeMix) {
            names.push_back(&name);
            weights.push_back(weight);
        }
        type = *names[rng_.weightedIndex(weights)];
    } else {
        type = app_.sampleType(rng_);
    }
    os::RequestId id = kernel_.requests().create(
        type, kernel_.simulation().now());
    ++submitted_;
    app_.submit(id, type);
}

void
LoadClient::scheduleNextArrival()
{
    if (!running_)
        return;
    sim::SimTime gap =
        sim::secF(rng_.exponential(1.0 / cfg_.ratePerSec));
    kernel_.simulation().schedule(gap, [this] {
        if (!running_)
            return;
        submitOne();
        scheduleNextArrival();
    });
}

ClientConfig
LoadClient::forUtilization(ServerApp &app, os::Kernel &kernel,
                           double utilization, std::uint64_t seed)
{
    util::fatalIf(utilization <= 0, "utilization must be positive");
    ClientConfig cfg;
    cfg.seed = seed;
    int cores = kernel.machine().totalCores();
    if (utilization >= 0.95) {
        // Peak: closed loop with enough outstanding requests to keep
        // every core busy through blocking stages.
        cfg.mode = ClientConfig::Mode::ClosedLoop;
        cfg.concurrency = 2 * cores;
        return cfg;
    }
    // Partial load: Poisson arrivals at the matching fraction of the
    // service capacity.
    cfg.mode = ClientConfig::Mode::OpenLoop;
    double cycles_per_sec =
        kernel.machine().config().freqGhz * 1e9 * cores;
    cfg.ratePerSec =
        utilization * cycles_per_sec / app.meanServiceCycles();
    return cfg;
}

} // namespace wl
} // namespace pcon
