#include "fault_plan.h"

#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace pcon {
namespace fault {

namespace {

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Parse a duration token with an ns/us/ms/s suffix. */
sim::SimTime
parseDuration(const std::string &token, int line_no)
{
    const char *begin = token.c_str();
    char *end = nullptr;
    double value = std::strtod(begin, &end);
    std::string suffix = trim(std::string(end));
    double scale = 0;
    if (suffix == "ns")
        scale = 1;
    else if (suffix == "us")
        scale = 1e3;
    else if (suffix == "ms")
        scale = 1e6;
    else if (suffix == "s")
        scale = 1e9;
    util::fatalIf(end == begin || scale == 0 || value < 0,
                  "fault plan line ", line_no, ": bad duration '",
                  token, "' (want <number><ns|us|ms|s>)");
    return static_cast<sim::SimTime>(value * scale);
}

/** Parse a plain number. */
double
parseNumber(const std::string &token, int line_no)
{
    const char *begin = token.c_str();
    char *end = nullptr;
    double value = std::strtod(begin, &end);
    util::fatalIf(end == begin || !trim(std::string(end)).empty(),
                  "fault plan line ", line_no, ": bad number '",
                  token, "'");
    return value;
}

/** Render a duration with the coarsest exact suffix. */
std::string
renderDuration(sim::SimTime t)
{
    auto whole = [&](std::int64_t unit) { return t % unit == 0; };
    std::ostringstream out;
    if (t != 0 && whole(1000000000))
        out << t / 1000000000 << "s";
    else if (t != 0 && whole(1000000))
        out << t / 1000000 << "ms";
    else if (t != 0 && whole(1000))
        out << t / 1000 << "us";
    else
        out << t << "ns";
    return out.str();
}

} // namespace

FaultPlan
FaultPlan::canonical()
{
    FaultPlan plan;
    plan.seed = 42;
    plan.meter.dropProbability = 0.1;
    plan.meter.outages.push_back({sim::sec(3), sim::sec(2)});
    plan.sockets.lossProbability = 0.01;
    return plan;
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = raw;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        std::size_t eq = line.find('=');
        util::fatalIf(eq == std::string::npos, "fault plan line ",
                      line_no, ": expected 'key = value', got '",
                      trim(raw), "'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        util::fatalIf(value.empty(), "fault plan line ", line_no,
                      ": empty value for '", key, "'");

        if (key == "seed") {
            plan.seed = static_cast<std::uint64_t>(
                parseNumber(value, line_no));
        } else if (key == "meter.drop") {
            plan.meter.dropProbability = parseNumber(value, line_no);
        } else if (key == "meter.duplicate") {
            plan.meter.duplicateProbability =
                parseNumber(value, line_no);
        } else if (key == "meter.jitter") {
            plan.meter.jitterProbability = parseNumber(value, line_no);
        } else if (key == "meter.max_jitter") {
            plan.meter.maxJitter = parseDuration(value, line_no);
        } else if (key == "meter.quantize_w") {
            plan.meter.quantizeStepW = parseNumber(value, line_no);
        } else if (key == "meter.outage") {
            std::size_t space = value.find(' ');
            util::fatalIf(space == std::string::npos,
                          "fault plan line ", line_no,
                          ": meter.outage wants '<start> <duration>'");
            plan.meter.outages.push_back(
                {parseDuration(trim(value.substr(0, space)), line_no),
                 parseDuration(trim(value.substr(space + 1)),
                               line_no)});
        } else if (key == "counters.stuck_core") {
            plan.counters.stuckCore =
                static_cast<int>(parseNumber(value, line_no));
        } else if (key == "counters.stuck_from") {
            plan.counters.stuckFrom = parseDuration(value, line_no);
        } else if (key == "counters.stuck_for") {
            plan.counters.stuckFor = parseDuration(value, line_no);
        } else if (key == "counters.saturate_cycles") {
            plan.counters.saturateCycles =
                parseNumber(value, line_no);
        } else if (key == "socket.loss") {
            plan.sockets.lossProbability = parseNumber(value, line_no);
        } else if (key == "socket.duplicate") {
            plan.sockets.duplicateProbability =
                parseNumber(value, line_no);
        } else if (key == "socket.reorder") {
            plan.sockets.reorderProbability =
                parseNumber(value, line_no);
        } else if (key == "socket.reorder_delay") {
            plan.sockets.reorderDelay = parseDuration(value, line_no);
        } else if (key == "socket.stale_tag") {
            plan.sockets.staleTagProbability =
                parseNumber(value, line_no);
        } else if (key == "task.kill") {
            plan.tasks.killAt.push_back(
                parseDuration(value, line_no));
        } else if (key == "task.fork_storm_at") {
            plan.tasks.forkStormAt = parseDuration(value, line_no);
        } else if (key == "task.fork_storm_tasks") {
            plan.tasks.forkStormTasks =
                static_cast<int>(parseNumber(value, line_no));
        } else if (key == "task.fork_storm_cycles") {
            plan.tasks.forkStormCycles = parseNumber(value, line_no);
        } else {
            util::fatal("fault plan line ", line_no,
                        ": unknown key '", key, "'");
        }
    }

    auto probability = [&](double p, const char *key) {
        util::fatalIf(p < 0 || p > 1, "fault plan: ", key,
                      " must be a probability in [0, 1], got ", p);
    };
    probability(plan.meter.dropProbability, "meter.drop");
    probability(plan.meter.duplicateProbability, "meter.duplicate");
    probability(plan.meter.jitterProbability, "meter.jitter");
    probability(plan.sockets.lossProbability, "socket.loss");
    probability(plan.sockets.duplicateProbability, "socket.duplicate");
    probability(plan.sockets.reorderProbability, "socket.reorder");
    probability(plan.sockets.staleTagProbability, "socket.stale_tag");
    return plan;
}

std::string
FaultPlan::render() const
{
    std::ostringstream out;
    out << "seed = " << seed << "\n";
    if (meter.dropProbability > 0)
        out << "meter.drop = " << meter.dropProbability << "\n";
    if (meter.duplicateProbability > 0)
        out << "meter.duplicate = " << meter.duplicateProbability
            << "\n";
    if (meter.jitterProbability > 0)
        out << "meter.jitter = " << meter.jitterProbability << "\n";
    if (meter.maxJitter > 0)
        out << "meter.max_jitter = " << renderDuration(meter.maxJitter)
            << "\n";
    if (meter.quantizeStepW > 0)
        out << "meter.quantize_w = " << meter.quantizeStepW << "\n";
    for (const MeterOutage &o : meter.outages)
        out << "meter.outage = " << renderDuration(o.start) << " "
            << renderDuration(o.duration) << "\n";
    if (counters.stuckCore >= 0) {
        out << "counters.stuck_core = " << counters.stuckCore << "\n";
        out << "counters.stuck_from = "
            << renderDuration(counters.stuckFrom) << "\n";
        if (counters.stuckFor > 0)
            out << "counters.stuck_for = "
                << renderDuration(counters.stuckFor) << "\n";
    }
    if (counters.saturateCycles > 0)
        out << "counters.saturate_cycles = " << counters.saturateCycles
            << "\n";
    if (sockets.lossProbability > 0)
        out << "socket.loss = " << sockets.lossProbability << "\n";
    if (sockets.duplicateProbability > 0)
        out << "socket.duplicate = " << sockets.duplicateProbability
            << "\n";
    if (sockets.reorderProbability > 0) {
        out << "socket.reorder = " << sockets.reorderProbability
            << "\n";
        out << "socket.reorder_delay = "
            << renderDuration(sockets.reorderDelay) << "\n";
    }
    if (sockets.staleTagProbability > 0)
        out << "socket.stale_tag = " << sockets.staleTagProbability
            << "\n";
    for (sim::SimTime t : tasks.killAt)
        out << "task.kill = " << renderDuration(t) << "\n";
    if (tasks.forkStormTasks > 0) {
        out << "task.fork_storm_at = "
            << renderDuration(tasks.forkStormAt) << "\n";
        out << "task.fork_storm_tasks = " << tasks.forkStormTasks
            << "\n";
        out << "task.fork_storm_cycles = " << tasks.forkStormCycles
            << "\n";
    }
    return out.str();
}

} // namespace fault
} // namespace pcon
