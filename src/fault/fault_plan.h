/**
 * @file
 * Declarative fault plans. A FaultPlan is a seed plus per-interface
 * fault rates and scheduled events; the FaultInjector executes it
 * deterministically against a live system. Plans can be built in
 * code, parsed from a small line-oriented grammar (see parse), or
 * taken from canonical() — the reference plan used by the
 * acceptance tests.
 */

#ifndef PCON_FAULT_FAULT_PLAN_H
#define PCON_FAULT_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace pcon {
namespace fault {

/** A closed interval during which the meter delivers nothing. */
struct MeterOutage
{
    sim::SimTime start = 0;
    sim::SimTime duration = 0;
};

/** Faults applied to hw::PowerMeter sample delivery. */
struct MeterFaults
{
    /** Probability a delivered sample is silently dropped. */
    double dropProbability = 0;
    /** Probability a sample is delivered twice. */
    double duplicateProbability = 0;
    /** Probability a sample's delivery is delayed by extra jitter. */
    double jitterProbability = 0;
    /** Largest extra delivery delay a jittered sample suffers. */
    sim::SimTime maxJitter = 0;
    /** Quantization step applied to readings, Watts (0 = off). */
    double quantizeStepW = 0;
    /** Transient outages: every sample inside one is dropped. */
    std::vector<MeterOutage> outages;

    bool
    any() const
    {
        return dropProbability > 0 || duplicateProbability > 0 ||
            jitterProbability > 0 || quantizeStepW > 0 ||
            !outages.empty();
    }
};

/** Faults applied to one core's hardware counters. */
struct CounterFaults
{
    /** Core whose counter reads are perturbed (-1 = none). */
    int stuckCore = -1;
    /** When the core's counters freeze (stuck-at fault). */
    sim::SimTime stuckFrom = 0;
    /** How long they stay frozen (0 = forever). */
    sim::SimTime stuckFor = 0;
    /**
     * Saturation cap on per-read cycle counts (0 = off): reads
     * report at most this many cycles, modeling a narrow or clipped
     * PMU register.
     */
    double saturateCycles = 0;

    bool
    any() const
    {
        return stuckCore >= 0 || saturateCycles > 0;
    }
};

/** Faults applied to context-tagged socket segments. */
struct SocketFaults
{
    /** Probability a segment is lost in flight. */
    double lossProbability = 0;
    /** Probability a segment is delivered twice. */
    double duplicateProbability = 0;
    /** Probability a segment is delayed past its successors. */
    double reorderProbability = 0;
    /** Extra delay a reordered segment suffers. */
    sim::SimTime reorderDelay = sim::msec(2);
    /**
     * Probability a segment's piggybacked RequestStatsTag is
     * replaced by a stale snapshot (the previous tag seen for that
     * context) or, when none exists, marked absent.
     */
    double staleTagProbability = 0;

    bool
    any() const
    {
        return lossProbability > 0 || duplicateProbability > 0 ||
            reorderProbability > 0 || staleTagProbability > 0;
    }
};

/** Scheduled task-level faults. */
struct TaskFaults
{
    /**
     * Times at which one live request-serving task is killed
     * mid-request (deepest task bound to a live request context).
     */
    std::vector<sim::SimTime> killAt;
    /** When a fork storm starts (0 = off). */
    sim::SimTime forkStormAt = 0;
    /** Tasks spawned by the storm. */
    int forkStormTasks = 0;
    /** Compute cycles each storm task burns before exiting. */
    double forkStormCycles = 2e6;

    bool
    any() const
    {
        return !killAt.empty() || forkStormTasks > 0;
    }
};

/**
 * A complete deterministic fault plan. Same plan + same system seed
 * => byte-identical fault sequence.
 */
struct FaultPlan
{
    /** Seed of the injector's private RNG stream. */
    std::uint64_t seed = 42;
    MeterFaults meter;
    CounterFaults counters;
    SocketFaults sockets;
    TaskFaults tasks;

    /** True when any fault dimension is active. */
    bool
    any() const
    {
        return meter.any() || counters.any() || sockets.any() ||
            tasks.any();
    }

    /**
     * The canonical acceptance plan: 10% meter sample loss, one 2 s
     * meter outage starting at t = 3 s, and 1% tagged-message loss.
     */
    static FaultPlan canonical();

    /**
     * Parse the line-oriented plan grammar. One `key = value` pair
     * per line; `#` starts a comment. Durations accept ns/us/ms/s
     * suffixes. Repeatable keys append. Keys:
     *
     *   seed = 42
     *   meter.drop = 0.1
     *   meter.duplicate = 0.02
     *   meter.jitter = 0.05
     *   meter.max_jitter = 3ms
     *   meter.quantize_w = 0.5
     *   meter.outage = 3s 2s        # start duration (repeatable)
     *   counters.stuck_core = 1
     *   counters.stuck_from = 2s
     *   counters.stuck_for = 500ms
     *   counters.saturate_cycles = 1e6
     *   socket.loss = 0.01
     *   socket.duplicate = 0.01
     *   socket.reorder = 0.02
     *   socket.reorder_delay = 2ms
     *   socket.stale_tag = 0.05
     *   task.kill = 4s              # repeatable
     *   task.fork_storm_at = 5s
     *   task.fork_storm_tasks = 32
     *   task.fork_storm_cycles = 2e6
     *
     * Fatal on unknown keys or malformed values.
     */
    static FaultPlan parse(const std::string &text);

    /** Render as the parse() grammar (only non-default keys). */
    std::string render() const;
};

} // namespace fault
} // namespace pcon

#endif // PCON_FAULT_FAULT_PLAN_H
