#include "fault_injector.h"

#include <algorithm>
#include <cmath>

#include "os/task.h"
#include "util/logging.h"

namespace pcon {
namespace fault {

std::uint64_t
FaultCounts::total() const
{
    return meterDropped + meterOutageDropped + meterDuplicated +
        meterJittered + meterQuantized + counterStuckReads +
        counterSaturatedReads + segmentsLost + segmentsDuplicated +
        segmentsReordered + segmentsStaleTagged + tasksKilled +
        stormForks;
}

FaultInjector::FaultInjector(sim::Simulation &sim,
                             const FaultPlan &plan)
    : sim_(sim), plan_(plan), rng_(plan.seed)
{}

FaultCounts
FaultInjector::counts() const
{
    util::LockGuard lock(countsMu_);
    return counts_;
}

void
FaultInjector::note(const char *kind,
                    std::uint64_t FaultCounts::*field,
                    const char *metric)
{
    std::uint64_t tally;
    {
        util::LockGuard lock(countsMu_);
        tally = ++(counts_.*field);
    }
    if (registry_ != nullptr)
        registry_->counter(metric).add(1);
    if (perfetto_ != nullptr)
        perfetto_->noteFault(kind, static_cast<double>(tally));
}

// --- power meter ---

void
FaultInjector::attachMeter(hw::PowerMeter &meter)
{
    meter.setDeliveryPerturber(
        [this](const hw::PowerMeter::Sample &sample) {
            return perturbMeterSample(sample);
        });
}

std::vector<hw::PowerMeter::Sample>
FaultInjector::perturbMeterSample(const hw::PowerMeter::Sample &sample)
{
    const MeterFaults &mf = plan_.meter;
    for (const MeterOutage &o : mf.outages) {
        if (sample.intervalEnd >= o.start &&
            sample.intervalEnd < o.start + o.duration) {
            note("meter outage drop", &FaultCounts::meterOutageDropped,
                 "fault.meter_outage_dropped");
            return {};
        }
    }
    if (mf.dropProbability > 0 && rng_.chance(mf.dropProbability)) {
        note("meter drop", &FaultCounts::meterDropped,
             "fault.meter_dropped");
        return {};
    }
    hw::PowerMeter::Sample out = sample;
    if (mf.quantizeStepW > 0) {
        double q = std::floor(out.watts.value() / mf.quantizeStepW) *
            mf.quantizeStepW;
        if (q != out.watts.value()) {
            out.watts = util::Watts(q);
            note("meter quantize", &FaultCounts::meterQuantized,
                 "fault.meter_quantized");
        }
    }
    if (mf.jitterProbability > 0 && mf.maxJitter > 0 &&
        rng_.chance(mf.jitterProbability)) {
        out.deliveredAt += static_cast<sim::SimTime>(
            rng_.uniform(0.0, static_cast<double>(mf.maxJitter)));
        note("meter jitter", &FaultCounts::meterJittered,
             "fault.meter_jittered");
    }
    if (mf.duplicateProbability > 0 &&
        rng_.chance(mf.duplicateProbability)) {
        note("meter duplicate", &FaultCounts::meterDuplicated,
             "fault.meter_duplicated");
        return {out, out};
    }
    return {out};
}

// --- counters ---

void
FaultInjector::attachCounters(hw::Machine &machine)
{
    machine.setCounterFaultHook(
        [this](int core, hw::CounterSnapshot &snapshot) {
            perturbCounters(core, snapshot);
        });
}

void
FaultInjector::perturbCounters(int core, hw::CounterSnapshot &snapshot)
{
    const CounterFaults &cf = plan_.counters;
    if (core != cf.stuckCore)
        return;
    sim::SimTime now = sim_.now();
    bool in_window = now >= cf.stuckFrom &&
        (cf.stuckFor == 0 || now < cf.stuckFrom + cf.stuckFor);
    if (cf.stuckCore >= 0 && in_window) {
        if (!stuckCaptured_) {
            stuckSnapshot_ = snapshot;
            stuckCaptured_ = true;
        }
        snapshot = stuckSnapshot_;
        note("counter stuck", &FaultCounts::counterStuckReads,
             "fault.counter_stuck_reads");
        return;
    }
    if (cf.saturateCycles > 0 &&
        snapshot.nonhaltCycles > cf.saturateCycles) {
        snapshot.nonhaltCycles = cf.saturateCycles;
        note("counter saturate", &FaultCounts::counterSaturatedReads,
             "fault.counter_saturated_reads");
    }
}

// --- sockets ---

void
FaultInjector::attachSockets(os::Kernel &kernel)
{
    kernel.setSegmentPerturber([this](const os::Segment &segment) {
        return perturbSegment(segment);
    });
}

std::vector<os::SegmentDelivery>
FaultInjector::perturbSegment(const os::Segment &segment)
{
    const SocketFaults &sf = plan_.sockets;
    // Remember the genuine tag before any rewriting so a later
    // stale-tag fault has an honest (but out-of-date) tag to replay.
    os::RequestStatsTag previous{};
    bool have_previous = false;
    if (segment.stats.present) {
        auto it = lastTags_.find(segment.context);
        if (it != lastTags_.end()) {
            previous = it->second;
            have_previous = true;
        }
        lastTags_[segment.context] = segment.stats;
    }
    if (sf.lossProbability > 0 && rng_.chance(sf.lossProbability)) {
        note("segment loss", &FaultCounts::segmentsLost,
             "fault.segment_lost");
        return {};
    }
    os::SegmentDelivery d;
    d.segment = segment;
    if (segment.stats.present && sf.staleTagProbability > 0 &&
        rng_.chance(sf.staleTagProbability)) {
        if (have_previous)
            d.segment.stats = previous;
        else
            d.segment.stats = os::RequestStatsTag{};
        note("segment stale tag", &FaultCounts::segmentsStaleTagged,
             "fault.segment_stale_tag");
    }
    if (sf.reorderProbability > 0 &&
        rng_.chance(sf.reorderProbability)) {
        d.extraDelay = sf.reorderDelay;
        note("segment reorder", &FaultCounts::segmentsReordered,
             "fault.segment_reordered");
    }
    if (sf.duplicateProbability > 0 &&
        rng_.chance(sf.duplicateProbability)) {
        note("segment duplicate", &FaultCounts::segmentsDuplicated,
             "fault.segment_duplicated");
        return {d, d};
    }
    return {d};
}

// --- tasks ---

void
FaultInjector::attachTasks(os::Kernel &kernel)
{
    taskKernel_ = &kernel;
}

void
FaultInjector::killOneRequestTask()
{
    if (taskKernel_ == nullptr)
        return;
    // Victims are live tasks bound to a real request context —
    // killing an idle server worker would not model a mid-request
    // failure. liveTaskIds() is sorted, so the pick is deterministic.
    std::vector<os::TaskId> victims;
    for (os::TaskId id : taskKernel_->liveTaskIds()) {
        os::Task *task = taskKernel_->findTask(id);
        if (task != nullptr && task->context != os::NoRequest)
            victims.push_back(id);
    }
    if (victims.empty()) {
        util::inform("fault: task.kill found no in-request victim at ",
                     sim_.now(), " ns; skipping");
        return;
    }
    os::TaskId victim = victims[static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(victims.size()) -
                               1))];
    if (taskKernel_->kill(victim))
        note("task kill", &FaultCounts::tasksKilled, "fault.task_kills");
}

void
FaultInjector::startForkStorm()
{
    if (taskKernel_ == nullptr)
        return;
    const TaskFaults &tf = plan_.tasks;
    double cycles = tf.forkStormCycles;
    for (int i = 0; i < tf.forkStormTasks; ++i) {
        auto logic = std::make_shared<os::ScriptedLogic>(
            std::vector<os::ScriptedLogic::Step>{
                [cycles](os::Kernel &, os::Task &,
                         const os::OpResult &) -> os::Op {
                    return os::ComputeOp{hw::ActivityVector{}, cycles};
                }});
        taskKernel_->spawn(logic,
                           "storm-" + std::to_string(i));
        note("fork storm spawn", &FaultCounts::stormForks,
             "fault.forks_spawned");
    }
}

// --- observers ---

void
FaultInjector::attachTelemetry(telemetry::Registry &registry)
{
    registry_ = &registry;
}

void
FaultInjector::attachPerfetto(telemetry::PerfettoExporter &exporter)
{
    perfetto_ = &exporter;
}

void
FaultInjector::arm()
{
    util::panicIf(armed_, "FaultInjector::arm called twice");
    armed_ = true;
    sim::SimTime now = sim_.now();
    std::vector<sim::SimTime> kills = plan_.tasks.killAt;
    std::sort(kills.begin(), kills.end());
    for (sim::SimTime at : kills) {
        sim::SimTime wait = at > now ? at - now : 0;
        sim_.schedule(wait, [this] { killOneRequestTask(); });
    }
    if (plan_.tasks.forkStormTasks > 0) {
        sim::SimTime at = plan_.tasks.forkStormAt;
        sim::SimTime wait = at > now ? at - now : 0;
        sim_.schedule(wait, [this] { startForkStorm(); });
    }
}

} // namespace fault
} // namespace pcon
