/**
 * @file
 * Deterministic, simulation-scheduled fault injection. A
 * FaultInjector executes one FaultPlan against a live system by
 * installing perturbation hooks at the real interfaces — power-meter
 * delivery, counter reads, socket segments — and scheduling
 * task-level chaos (kills, fork storms) on the simulation clock.
 * Every injected event is counted, optionally published as a
 * `fault.*` telemetry counter, and optionally marked on the Perfetto
 * trace, so degradation is observable rather than silent.
 *
 * Determinism: all randomness comes from one private sim::Rng seeded
 * by the plan, drawn in simulation order. Same plan + same workload
 * seed => identical fault sequence, byte-identical traces.
 */

#ifndef PCON_FAULT_FAULT_INJECTOR_H
#define PCON_FAULT_FAULT_INJECTOR_H

#include <cstdint>
#include <map>

#include "fault/fault_plan.h"
#include "hw/machine.h"
#include "hw/power_meter.h"
#include "os/kernel.h"
#include "sim/rng.h"
#include "telemetry/perfetto.h"
#include "telemetry/registry.h"
#include "util/sync.h"

namespace pcon {
namespace fault {

/** Everything the injector has done so far. */
struct FaultCounts
{
    std::uint64_t meterDropped = 0;
    std::uint64_t meterOutageDropped = 0;
    std::uint64_t meterDuplicated = 0;
    std::uint64_t meterJittered = 0;
    std::uint64_t meterQuantized = 0;
    std::uint64_t counterStuckReads = 0;
    std::uint64_t counterSaturatedReads = 0;
    std::uint64_t segmentsLost = 0;
    std::uint64_t segmentsDuplicated = 0;
    std::uint64_t segmentsReordered = 0;
    std::uint64_t segmentsStaleTagged = 0;
    std::uint64_t tasksKilled = 0;
    std::uint64_t stormForks = 0;

    /** Sum over every category. */
    std::uint64_t total() const;
};

/**
 * Executes one FaultPlan. Attach the interfaces to perturb, then
 * arm(). Attachments install hooks immediately; probabilistic faults
 * fire as traffic flows, scheduled faults (outages, kills, storms)
 * are armed on the simulation clock by arm().
 *
 * One injector owns the perturber slot of everything it attaches;
 * attaching a second injector to the same meter/kernel/machine
 * replaces the first.
 */
class FaultInjector
{
  public:
    FaultInjector(sim::Simulation &sim, const FaultPlan &plan);

    /** Perturb a power meter's sample delivery. */
    void attachMeter(hw::PowerMeter &meter);

    /** Perturb counter reads of the plan's stuck/saturated core. */
    void attachCounters(hw::Machine &machine);

    /** Perturb outbound tagged segments of a kernel's sockets. */
    void attachSockets(os::Kernel &kernel);

    /** Target task-level faults (kills, fork storm) at a kernel. */
    void attachTasks(os::Kernel &kernel);

    /** Publish `fault.*` counters into a metrics registry. */
    void attachTelemetry(telemetry::Registry &registry);

    /** Mark injected events on a Perfetto trace. */
    void attachPerfetto(telemetry::PerfettoExporter &exporter);

    /**
     * Schedule the plan's time-based faults (kills, fork storm)
     * relative to the current simulation time. Probabilistic hooks
     * are live from attachment; arm() is only needed for scheduled
     * events and may be called once.
     */
    void arm();

    /**
     * Snapshot of the injection tallies so far. Returned by value:
     * perturbation hooks on other shards keep bumping the live
     * tallies (behind the counts mutex), so a reference would escape
     * the lock.
     */
    FaultCounts counts() const;

    /** The plan being executed. */
    const FaultPlan &plan() const { return plan_; }

  private:
    std::vector<hw::PowerMeter::Sample>
    perturbMeterSample(const hw::PowerMeter::Sample &sample);
    void perturbCounters(int core, hw::CounterSnapshot &snapshot);
    std::vector<os::SegmentDelivery>
    perturbSegment(const os::Segment &segment);
    void killOneRequestTask();
    void startForkStorm();

    /**
     * Count one injected event: bump the named tally under the counts
     * mutex, then publish to the registry counter and the Perfetto
     * track outside it (both have their own thread-safe surfaces).
     */
    void note(const char *kind, std::uint64_t FaultCounts::*field,
              const char *metric);

    // Wiring-phase state: set while the harness is single-threaded
    // (construction, attach*(), arm()), read-only while traffic
    // flows. The perturbation state below (rng_, stuck snapshot,
    // stale-tag replay map) is shard-local by design: one injector's
    // hooks fire on the shard that owns the attached interfaces.
    // pcon-lint: shard-local(bound at construction, never reseated)
    sim::Simulation &sim_;
    // pcon-lint: shard-local(copied at construction, read-only after)
    FaultPlan plan_;
    // pcon-lint: shard-local(drawn only by this injector's hooks)
    sim::Rng rng_;
    // pcon-lint: shard-local(flipped once by arm() during wiring)
    bool armed_ = false;
    // pcon-lint: shard-local(set by attachTasks() during wiring)
    os::Kernel *taskKernel_ = nullptr;
    // pcon-lint: shard-local(set by attachTelemetry() during wiring)
    telemetry::Registry *registry_ = nullptr;
    // pcon-lint: shard-local(set by attachPerfetto() during wiring)
    telemetry::PerfettoExporter *perfetto_ = nullptr;

    /** Frozen snapshot for the stuck-at counter fault. */
    // pcon-lint: shard-local(touched only by the attached machine's counter hook)
    bool stuckCaptured_ = false;
    // pcon-lint: shard-local(touched only by the attached machine's counter hook)
    hw::CounterSnapshot stuckSnapshot_{};

    /** Last genuine stats tag seen per context (stale-tag replay). */
    // pcon-lint: shard-local(touched only by the attached kernel's segment hook)
    std::map<os::RequestId, os::RequestStatsTag> lastTags_;

    /** Tallies are read cross-shard (counts(), telemetry pulls). */
    mutable util::Mutex countsMu_;
    FaultCounts counts_ PCON_GUARDED_BY(countsMu_);
};

} // namespace fault
} // namespace pcon

#endif // PCON_FAULT_FAULT_INJECTOR_H
