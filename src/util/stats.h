/**
 * @file
 * Small statistics helpers shared by the simulator and experiment
 * drivers: running moments, quantiles, histograms, and time series.
 */

#ifndef PCON_UTIL_STATS_H
#define PCON_UTIL_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace pcon {
namespace util {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations added. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Sample variance (n-1 denominator); 0 with <2 observations. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest observation; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Forget all observations. */
    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi); values outside the range land in
 * the first or last bin. Used for the request power/energy
 * distribution figures.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin (must exceed lo).
     * @param bins Number of bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one observation; fatal() on NaN or infinity. */
    void add(double x);

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Count in bin i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Center value of bin i. */
    double binCenter(std::size_t i) const;

    /** Total observations. */
    std::size_t total() const { return total_; }

    /** Fraction of observations in bin i (0 when empty). */
    double binFraction(std::size_t i) const;

    /**
     * Render a one-line-per-bin ASCII bar chart, `width` characters at
     * the modal bin, for terminal output of the distribution figures.
     */
    std::vector<std::string> asciiRows(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * A uniformly sampled time series (fixed period, absolute start time).
 * Stores doubles; used for meter readings and model power traces.
 */
class TimeSeries
{
  public:
    /**
     * @param start_ns Timestamp of sample 0, nanoseconds.
     * @param period_ns Spacing between samples, nanoseconds (> 0).
     */
    TimeSeries(long long start_ns, long long period_ns);

    /** Append the next sample. */
    void append(double value);

    /** Number of samples. */
    std::size_t size() const { return values_.size(); }

    /** True when no samples are stored. */
    bool empty() const { return values_.empty(); }

    /** Value of sample i. */
    double at(std::size_t i) const { return values_.at(i); }

    /** Timestamp of sample i in nanoseconds. */
    long long timeAt(std::size_t i) const;

    /** Sample period in nanoseconds. */
    long long period() const { return period_; }

    /** Timestamp of sample 0 in nanoseconds. */
    long long start() const { return start_; }

    /** Underlying values. */
    const std::vector<double> &values() const { return values_; }

    /** Mean of all samples; 0 when empty. */
    double mean() const;

  private:
    long long start_;
    long long period_;
    std::vector<double> values_;
};

/**
 * Exact quantile of a sample set (q in [0,1]); sorts a copy.
 * fatal() on an empty sample, q outside [0,1], or NaN elements.
 */
double quantile(std::vector<double> values, double q);

} // namespace util
} // namespace pcon

#endif // PCON_UTIL_STATS_H
