/**
 * @file
 * Zero-cost strong types for the physical quantities the accounting
 * engine trades in: Joules, Watts, Cycles, and SimSeconds. Every
 * exact-accounting claim in this repo (per-span sums equal the
 * container ledger; meter readings align with model estimates) is a
 * claim about these quantities, and software-defined power meters
 * report silent unit mix-ups as their dominant failure mode. A bare
 * `double watts` and a bare `double joules` are the same type to the
 * compiler; these wrappers make the dimension part of the signature
 * while compiling to the identical double arithmetic (single member,
 * all operations constexpr and inline), so adopting them cannot
 * change a golden fixture by even one bit.
 *
 * Conventions:
 *  - construction from a raw double is `explicit`; `.value()` is the
 *    escape hatch back (serialization, linear algebra, tests);
 *  - same-dimension arithmetic (+, -, comparisons) preserves the
 *    dimension; scaling by a dimensionless double is allowed;
 *  - the ratio of two like quantities is a dimensionless double;
 *  - the physically meaningful cross products are spelled out:
 *    Joules / SimSeconds -> Watts, Watts * SimSeconds -> Joules,
 *    Joules / Watts -> SimSeconds, Cycles / SimSeconds -> double Hz;
 *  - streaming prints the raw value with the stream's current
 *    formatting, so typed CSV/log output is byte-identical to the
 *    double it replaced.
 *
 * The pcon-lint `units` rule (tools/pcon_lint) rejects new
 * `double` parameters/members/returns whose names look like energy
 * or power quantities outside this header.
 */

#ifndef PCON_UTIL_UNITS_H
#define PCON_UTIL_UNITS_H

#include <iosfwd>

namespace pcon {
namespace util {

/**
 * Declares the boilerplate every strong quantity shares: explicit
 * construction, value(), same-dimension arithmetic, dimensionless
 * scaling, and comparisons. Cross-dimension operators are defined
 * per-pair below the class definitions.
 */
#define PCON_UNIT_COMMON(Unit)                                         \
  public:                                                              \
    constexpr Unit() = default;                                        \
    constexpr explicit Unit(double raw) : raw_(raw) {}                 \
    /** The raw double (serialization / math escape hatch). */        \
    constexpr double value() const { return raw_; }                    \
    constexpr Unit operator-() const { return Unit(-raw_); }           \
    constexpr Unit operator+(Unit o) const { return Unit(raw_ + o.raw_); } \
    constexpr Unit operator-(Unit o) const { return Unit(raw_ - o.raw_); } \
    constexpr Unit &operator+=(Unit o) { raw_ += o.raw_; return *this; } \
    constexpr Unit &operator-=(Unit o) { raw_ -= o.raw_; return *this; } \
    constexpr Unit operator*(double k) const { return Unit(raw_ * k); } \
    constexpr Unit operator/(double k) const { return Unit(raw_ / k); } \
    constexpr Unit &operator*=(double k) { raw_ *= k; return *this; }  \
    constexpr Unit &operator/=(double k) { raw_ /= k; return *this; }  \
    /** Ratio of two like quantities is dimensionless. */             \
    constexpr double operator/(Unit o) const { return raw_ / o.raw_; } \
    constexpr bool operator==(Unit o) const { return raw_ == o.raw_; } \
    constexpr bool operator!=(Unit o) const { return raw_ != o.raw_; } \
    constexpr bool operator<(Unit o) const { return raw_ < o.raw_; }   \
    constexpr bool operator<=(Unit o) const { return raw_ <= o.raw_; } \
    constexpr bool operator>(Unit o) const { return raw_ > o.raw_; }   \
    constexpr bool operator>=(Unit o) const { return raw_ >= o.raw_; } \
                                                                       \
  private:                                                             \
    double raw_ = 0.0

/** An amount of energy, Joules. */
class Joules
{
    PCON_UNIT_COMMON(Joules);
};

/** A rate of energy use, Watts (Joules per second). */
class Watts
{
    PCON_UNIT_COMMON(Watts);
};

/** A count of processor cycles (double: attribution splits them). */
class Cycles
{
    PCON_UNIT_COMMON(Cycles);
};

/**
 * A span of simulated time in fractional seconds. Distinct from
 * sim::SimTime (integer nanosecond timestamps): SimSeconds is the
 * double-precision duration that power/energy arithmetic divides by.
 * sim::toSimSeconds(SimTime) converts (sim/ sits above util/).
 */
class SimSeconds
{
    PCON_UNIT_COMMON(SimSeconds);
};

#undef PCON_UNIT_COMMON

// --- physically meaningful cross-dimension arithmetic -------------

/** Energy over a duration is power. */
constexpr Watts
operator/(Joules e, SimSeconds t)
{
    return Watts(e.value() / t.value());
}

/** Power sustained for a duration is energy. */
constexpr Joules
operator*(Watts p, SimSeconds t)
{
    return Joules(p.value() * t.value());
}

/** Power sustained for a duration is energy (commuted). */
constexpr Joules
operator*(SimSeconds t, Watts p)
{
    return Joules(t.value() * p.value());
}

/** How long a power level takes to spend an energy budget. */
constexpr SimSeconds
operator/(Joules e, Watts p)
{
    return SimSeconds(e.value() / p.value());
}

/** Cycles over a duration is a frequency in Hz. */
constexpr double
hz(Cycles c, SimSeconds t)
{
    return c.value() / t.value();
}

/** Dimensionless scaling with the scalar on the left. */
constexpr Joules operator*(double k, Joules v) { return v * k; }
constexpr Watts operator*(double k, Watts v) { return v * k; }
constexpr Cycles operator*(double k, Cycles v) { return v * k; }
constexpr SimSeconds operator*(double k, SimSeconds v) { return v * k; }

/** Stream the raw value (byte-identical to the double replaced). */
std::ostream &operator<<(std::ostream &out, Joules v);
std::ostream &operator<<(std::ostream &out, Watts v);
std::ostream &operator<<(std::ostream &out, Cycles v);
std::ostream &operator<<(std::ostream &out, SimSeconds v);

} // namespace util
} // namespace pcon

#endif // PCON_UTIL_UNITS_H
