#include "slab_arena.h"

#include <cstdlib>

#include "util/logging.h"

namespace pcon {
namespace util {

namespace {

/** Hard alignment ceiling; covers every node type we pool. */
constexpr std::size_t kMaxAlign = 64;

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SlabArena::SlabArena(std::size_t chunk_bytes)
    : chunkBytes_(chunk_bytes)
{
    fatalIf(chunk_bytes == 0, "SlabArena chunk size must be > 0");
}

SlabArena::~SlabArena()
{
    for (Chunk &chunk : chunks_) {
        // ASan refuses to free poisoned regions; lift the poison
        // before handing the chunk back.
        PCON_UNPOISON(chunk.data, chunk.size);
        ::operator delete(chunk.data,
                          std::align_val_t(kMaxAlign));
    }
}

void
SlabArena::activateNextChunk(std::size_t min_bytes)
{
    // Reuse the next retained chunk that is big enough (after
    // reset() every chunk is retained); otherwise grow by one.
    std::size_t want = min_bytes > chunkBytes_ ? min_bytes : chunkBytes_;
    std::size_t idx = activeChunk_ == kNoChunk ? 0 : activeChunk_ + 1;
    while (idx < chunks_.size() && chunks_[idx].size < want)
        ++idx;
    if (idx == chunks_.size()) {
        Chunk chunk;
        chunk.size = want;
        chunk.data = static_cast<unsigned char *>(::operator new(
            want, std::align_val_t(kMaxAlign)));
        PCON_POISON(chunk.data, chunk.size);
        bytesReserved_ += want;
        chunks_.push_back(chunk);
    }
    activeChunk_ = idx;
    offset_ = 0;
}

void *
SlabArena::allocate(std::size_t bytes, std::size_t align)
{
    panicIf(!isPowerOfTwo(align) || align > kMaxAlign,
            "SlabArena alignment must be a power of two <= ", kMaxAlign,
            ", got ", align);
    if (bytes == 0)
        bytes = align; // keep zero-byte allocations distinct
    if (activeChunk_ == kNoChunk)
        activateNextChunk(bytes);

    std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
    if (aligned + bytes > chunks_[activeChunk_].size) {
        activateNextChunk(bytes);
        aligned = 0;
    }
    unsigned char *out = chunks_[activeChunk_].data + aligned;
    offset_ = aligned + bytes;
    bytesAllocated_ += bytes;
    ++allocationCount_;
    PCON_UNPOISON(out, bytes);
    return out;
}

void
SlabArena::reset()
{
    for (Chunk &chunk : chunks_)
        PCON_POISON(chunk.data, chunk.size);
    activeChunk_ = kNoChunk;
    offset_ = 0;
    bytesAllocated_ = 0;
    allocationCount_ = 0;
}

} // namespace util
} // namespace pcon
