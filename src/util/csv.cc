#include "csv.h"

#include "logging.h"

namespace pcon {
namespace util {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path, std::ios::trunc)
{
    fatalIf(!out_, "cannot open CSV output file: ", path);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string escaped = "\"";
    for (char c : cell) {
        if (c == '"')
            escaped += '"';
        escaped += c;
    }
    escaped += '"';
    return escaped;
}

} // namespace util
} // namespace pcon
