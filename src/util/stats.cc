#include "stats.h"

#include <algorithm>
#include <cmath>

#include "logging.h"

namespace pcon {
namespace util {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    std::size_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double mean = mean_ + delta * static_cast<double>(other.count_) /
        static_cast<double>(n);
    m2_ = m2_ + other.m2_ + delta * delta *
        static_cast<double>(count_) * static_cast<double>(other.count_) /
        static_cast<double>(n);
    mean_ = mean;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    fatalIf(bins == 0, "Histogram needs at least one bin");
    fatalIf(hi <= lo, "Histogram range is empty: [", lo, ", ", hi, ")");
}

void
Histogram::add(double x)
{
    // NaN poisons the bin computation (floor(NaN) cast to long is
    // undefined) and inf would silently clamp to an edge bin.
    fatalIf(!std::isfinite(x), "Histogram::add of non-finite value");
    double pos = (x - lo_) / (hi_ - lo_) *
        static_cast<double>(counts_.size());
    long bin = static_cast<long>(std::floor(pos));
    bin = std::clamp<long>(bin, 0,
                           static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

double
Histogram::binCenter(std::size_t i) const
{
    double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
        static_cast<double>(total_);
}

std::vector<std::string>
Histogram::asciiRows(std::size_t width) const
{
    std::size_t peak = 0;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);
    std::vector<std::string> rows;
    rows.reserve(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::size_t bar = peak == 0 ? 0 : counts_[i] * width / peak;
        rows.push_back(std::string(bar, '#'));
    }
    return rows;
}

TimeSeries::TimeSeries(long long start_ns, long long period_ns)
    : start_(start_ns), period_(period_ns)
{
    fatalIf(period_ns <= 0, "TimeSeries period must be positive");
}

void
TimeSeries::append(double value)
{
    values_.push_back(value);
}

long long
TimeSeries::timeAt(std::size_t i) const
{
    return start_ + static_cast<long long>(i) * period_;
}

double
TimeSeries::mean() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
quantile(std::vector<double> values, double q)
{
    fatalIf(values.empty(), "quantile of an empty sample");
    fatalIf(q < 0.0 || q > 1.0, "quantile q out of [0,1]: ", q);
    for (double v : values)
        // NaN violates std::sort's strict weak ordering (undefined
        // behaviour), so order statistics are meaningless.
        fatalIf(std::isnan(v), "quantile over a sample with NaN");
    std::sort(values.begin(), values.end());
    double pos = q * static_cast<double>(values.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = pos - static_cast<double>(lo);
    // Exact order statistic: skip the interpolation so an infinite
    // sample is returned as-is instead of producing inf * 0 = NaN.
    if (frac == 0.0)
        return values[lo];
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace util
} // namespace pcon
