#include "units.h"

#include <ostream>

namespace pcon {
namespace util {

std::ostream &
operator<<(std::ostream &out, Joules v)
{
    return out << v.value();
}

std::ostream &
operator<<(std::ostream &out, Watts v)
{
    return out << v.value();
}

std::ostream &
operator<<(std::ostream &out, Cycles v)
{
    return out << v.value();
}

std::ostream &
operator<<(std::ostream &out, SimSeconds v)
{
    return out << v.value();
}

} // namespace util
} // namespace pcon
