/**
 * @file
 * Compile-time-gated invariant contracts (the audit layer).
 *
 * PCON_AUDIT / PCON_AUDIT_MSG check internal physical invariants —
 * energy conservation, counter monotonicity, actuator bounds — on hot
 * paths. A failed audit is a bug in this library, so it reports via
 * util::panic() and throws PanicError.
 *
 * The checks are gated by the PCON_AUDIT_LEVEL preprocessor value
 * (normally injected by CMake's -DPCON_AUDIT_LEVEL option):
 *
 *   0  all audits compile out; condition expressions are NOT
 *      evaluated (zero overhead, release builds);
 *   1  cheap O(1) contracts on hot paths (default);
 *   2  adds expensive O(cores)/O(containers) sweeps via
 *      PCON_AUDIT_SLOW (debug / CI builds).
 *
 * Only macros depend on the level: this header defines no
 * level-dependent symbols with linkage, so translation units compiled
 * at different levels can link together (the level-0 compile-out test
 * relies on this).
 */

#ifndef PCON_UTIL_AUDIT_H
#define PCON_UTIL_AUDIT_H

#include "util/logging.h"

#ifndef PCON_AUDIT_LEVEL
#define PCON_AUDIT_LEVEL 1
#endif

// Stringification helpers (two-step so macro arguments expand).
#define PCON_AUDIT_STR2(x) #x
#define PCON_AUDIT_STR(x) PCON_AUDIT_STR2(x)

#if PCON_AUDIT_LEVEL >= 1

/**
 * Panic unless `cond` holds. Use for cheap O(1) contracts on hot
 * paths; compiled out (condition unevaluated) at audit level 0.
 */
#define PCON_AUDIT(cond)                                               \
    do {                                                               \
        if (!(cond))                                                   \
            ::pcon::util::panic("audit failed: " #cond " at "          \
                                __FILE__                               \
                                ":" PCON_AUDIT_STR(__LINE__));         \
    } while (false)

/**
 * Panic unless `cond` holds, streaming the extra arguments into the
 * message (same formatting as util::panic). The message arguments are
 * only evaluated on failure.
 */
#define PCON_AUDIT_MSG(cond, ...)                                      \
    do {                                                               \
        if (!(cond))                                                   \
            ::pcon::util::panic("audit failed: " #cond " at "          \
                                __FILE__                               \
                                ":" PCON_AUDIT_STR(__LINE__) ": ",     \
                                __VA_ARGS__);                          \
    } while (false)

#else // PCON_AUDIT_LEVEL == 0

#define PCON_AUDIT(cond) ((void)0)
#define PCON_AUDIT_MSG(cond, ...) ((void)0)

#endif

#if PCON_AUDIT_LEVEL >= 2

/** Like PCON_AUDIT_MSG but only enabled at audit level >= 2. */
#define PCON_AUDIT_SLOW(cond, ...) PCON_AUDIT_MSG(cond, __VA_ARGS__)

#else

#define PCON_AUDIT_SLOW(cond, ...) ((void)0)

#endif

#endif // PCON_UTIL_AUDIT_H
