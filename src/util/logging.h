/**
 * @file
 * Status and error reporting helpers in the gem5 style.
 *
 * panic() is for internal invariant violations (a bug in this library);
 * fatal() is for conditions caused by the caller (bad configuration or
 * arguments); warn()/inform() report conditions that do not stop
 * execution.
 */

#ifndef PCON_UTIL_LOGGING_H
#define PCON_UTIL_LOGGING_H

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pcon {
namespace util {

/** Severity of a log message. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Minimum severity that is emitted to stderr. Defaults to Warn so that
 * tests and benchmarks stay quiet; experiment drivers may lower it.
 */
LogLevel logThreshold();

/** Set the minimum emitted severity. */
void setLogThreshold(LogLevel level);

/** Emit one message at the given severity (newline appended). */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Process-wide per-severity counts of every logMessage() call,
 * including those below the emission threshold — a noisy run is
 * noisy whether or not anyone was watching stderr. The telemetry
 * layer publishes these as registry metrics.
 */
struct LogCounts
{
    std::uint64_t debug = 0;
    std::uint64_t info = 0;
    std::uint64_t warn = 0;
    std::uint64_t error = 0;

    /** All calls at any severity. */
    std::uint64_t total() const { return debug + info + warn + error; }
};

/**
 * Snapshot of the current cumulative counts. Returned by value: the
 * live tallies sit behind the logging mutex (all of logMessage(),
 * the threshold, and the counts share one lock, so shards may log
 * concurrently), and a reference would escape that lock.
 */
LogCounts logCounts();

/** Zero the counts (test isolation). */
void resetLogCounts();

/** Raised by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** Raised by fatal(): the caller supplied an impossible configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &out, const T &head, const Rest &...rest)
{
    out << head;
    formatInto(out, rest...);
}

} // namespace detail

/** Build a string by streaming all arguments together. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream out;
    detail::formatInto(out, args...);
    return out.str();
}

/** Report an internal bug and throw PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::string msg = concat("panic: ", args...);
    logMessage(LogLevel::Error, msg);
    throw PanicError(msg);
}

/** Report a caller error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::string msg = concat("fatal: ", args...);
    logMessage(LogLevel::Error, msg);
    throw FatalError(msg);
}

/** Report a recoverable anomaly. */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, concat("warn: ", args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Info, concat("info: ", args...));
}

/** panic() unless the condition holds. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

/** fatal() unless the condition holds. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

} // namespace util
} // namespace pcon

#endif // PCON_UTIL_LOGGING_H
