/**
 * @file
 * Annotated synchronization primitives: the only place in src/ that
 * may name a raw `std::mutex`, `std::shared_mutex`, `std::atomic`, or
 * `std::thread` (enforced by the pcon-lint `concurrency-primitives`
 * rule). Everything here is a zero-cost wrapper that carries Clang's
 * thread-safety attributes, so a Clang build with `-Wthread-safety`
 * (enabled as -Werror for Clang in the top-level CMakeLists) proves
 * at compile time that every access to a `PCON_GUARDED_BY` member
 * happens under its lock. GCC compiles the same code with the
 * attributes expanded to nothing.
 *
 * This layer exists for ROADMAP Open item 1 (the sharded parallel
 * simulation engine): components shared across per-machine worker
 * threads — the telemetry registry, the logging singletons, the span
 * collector, the fault-injector tallies, the event-queue insertion
 * surface — take their locks through these wrappers and annotate the
 * state they guard, making shard-safety checkable before the engine
 * lands. See docs/STATIC_ANALYSIS.md ("Concurrency readiness") and
 * DESIGN.md ("Shard-safety contract").
 */

#ifndef PCON_UTIL_SYNC_H
#define PCON_UTIL_SYNC_H

#include <atomic>
#include <mutex>
#include <shared_mutex>

// --- Clang thread-safety attribute macros ---------------------------
//
// Modeled on Clang's reference mutex.h (and abseil's
// thread_annotations.h): each macro expands to the matching
// __attribute__ under Clang and to nothing elsewhere.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PCON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PCON_THREAD_ANNOTATION
#define PCON_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability (e.g. "mutex"). */
#define PCON_CAPABILITY(x) PCON_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define PCON_SCOPED_CAPABILITY PCON_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the given lock. */
#define PCON_GUARDED_BY(x) PCON_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by the given lock. */
#define PCON_PT_GUARDED_BY(x) PCON_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function acquires the capability exclusively and does not release it. */
#define PCON_ACQUIRE(...) \
    PCON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function acquires the capability shared and does not release it. */
#define PCON_ACQUIRE_SHARED(...) \
    PCON_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the (exclusive or scoped) capability. */
#define PCON_RELEASE(...) \
    PCON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function releases the shared capability. */
#define PCON_RELEASE_SHARED(...) \
    PCON_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Caller must hold the capability exclusively. */
#define PCON_REQUIRES(...) \
    PCON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared. */
#define PCON_REQUIRES_SHARED(...) \
    PCON_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (non-reentrant entry point). */
#define PCON_EXCLUDES(...) \
    PCON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define PCON_RETURN_CAPABILITY(x) \
    PCON_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function out of the analysis (justify in a comment). */
#define PCON_NO_THREAD_SAFETY_ANALYSIS \
    PCON_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- Shard-ownership tag macros -------------------------------------
//
// Read by the pcon-lint shard-isolation analysis (cpp_model.py), not
// by the compiler: each expands to nothing and sits between the
// class keyword and the name, classifying the type for the
// shard-escape rule. The comment form `// pcon-lint: shard-owned`
// (on the class head or the line above) is equivalent; the bulk of
// the tree is classified in tools/pcon_lint/ownership.toml instead.
// A tag that contradicts the manifest is itself a lint finding.

/** Lives inside exactly one simulated machine's shard. */
#define PCON_SHARD_OWNED

/** Crosses shards through a synchronized, sanctioned surface. */
#define PCON_CROSS_SHARD

/** Harness/observability state outside the simulated world. */
#define PCON_HOST_GLOBAL

/** Passive copyable data with no shard affinity. */
#define PCON_VALUE_TYPE

namespace pcon {
namespace util {

/**
 * An annotated exclusive mutex. Prefer LockGuard over manual
 * lock()/unlock() pairs; the manual form exists for the rare
 * split-scope acquire.
 */
class PCON_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() PCON_ACQUIRE() { m_.lock(); }
    void unlock() PCON_RELEASE() { m_.unlock(); }

  private:
    std::mutex m_;
};

/**
 * An annotated test-and-set spinlock for very short, almost always
 * uncontended critical sections on hot paths (the event queue's
 * per-operation lock). An uncontended acquire/release pair is a
 * single exchange plus a store — several times cheaper than the
 * futex round trip of std::mutex — and the acquire/release atomics
 * are fully visible to TSan. Do NOT use it around anything that can
 * block or take more than a few hundred nanoseconds: waiters burn
 * CPU instead of sleeping.
 */
class PCON_CAPABILITY("mutex") SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock &) = delete;
    SpinLock &operator=(const SpinLock &) = delete;

    void
    lock() PCON_ACQUIRE()
    {
        while (locked_.exchange(true, std::memory_order_acquire)) {
            // Spin on a plain load so contending cores fight over a
            // shared cache line only when it might be free.
            while (locked_.load(std::memory_order_relaxed)) {
            }
        }
    }

    void
    unlock() PCON_RELEASE()
    {
        locked_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> locked_{false};
};

/** RAII lock over a util::SpinLock. */
class PCON_SCOPED_CAPABILITY SpinGuard
{
  public:
    explicit SpinGuard(SpinLock &m) PCON_ACQUIRE(m) : m_(m)
    {
        m_.lock();
    }
    ~SpinGuard() PCON_RELEASE() { m_.unlock(); }

    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    SpinLock &m_;
};

/**
 * An annotated reader/writer mutex for read-mostly shared state
 * (lockShared for concurrent readers, lock for exclusive writers).
 */
class PCON_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() PCON_ACQUIRE() { m_.lock(); }
    void unlock() PCON_RELEASE() { m_.unlock(); }
    void lockShared() PCON_ACQUIRE_SHARED() { m_.lock_shared(); }
    void unlockShared() PCON_RELEASE_SHARED() { m_.unlock_shared(); }

  private:
    std::shared_mutex m_;
};

/** RAII exclusive lock over a util::Mutex. */
class PCON_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) PCON_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~LockGuard() PCON_RELEASE() { m_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &m_;
};

/** RAII exclusive lock over a util::SharedMutex. */
class PCON_SCOPED_CAPABILITY WriteLockGuard
{
  public:
    explicit WriteLockGuard(SharedMutex &m) PCON_ACQUIRE(m) : m_(m)
    {
        m_.lock();
    }
    ~WriteLockGuard() PCON_RELEASE() { m_.unlock(); }

    WriteLockGuard(const WriteLockGuard &) = delete;
    WriteLockGuard &operator=(const WriteLockGuard &) = delete;

  private:
    SharedMutex &m_;
};

/** RAII shared (reader) lock over a util::SharedMutex. */
class PCON_SCOPED_CAPABILITY ReadLockGuard
{
  public:
    explicit ReadLockGuard(SharedMutex &m) PCON_ACQUIRE_SHARED(m)
        : m_(m)
    {
        m_.lockShared();
    }
    ~ReadLockGuard() PCON_RELEASE() { m_.unlockShared(); }

    ReadLockGuard(const ReadLockGuard &) = delete;
    ReadLockGuard &operator=(const ReadLockGuard &) = delete;

  private:
    SharedMutex &m_;
};

/**
 * A lock-free cell for single-word tallies that several shards bump
 * concurrently (telemetry counters, gauges). Loads and stores use
 * relaxed ordering: the cells carry statistics, not synchronization —
 * anything needing happens-before takes a Mutex instead.
 *
 * Copy construction/assignment read-then-write the value and are NOT
 * atomic as a whole; they exist so instrument structs stay movable at
 * registration time, before the cell is shared.
 */
template <typename T>
class Atomic
{
  public:
    constexpr Atomic() noexcept : v_(T{}) {}
    constexpr Atomic(T v) noexcept : v_(v) {}
    Atomic(const Atomic &other) noexcept : v_(other.load()) {}

    Atomic &
    operator=(const Atomic &other) noexcept
    {
        store(other.load());
        return *this;
    }

    T load() const noexcept { return v_.load(std::memory_order_relaxed); }
    void store(T v) noexcept { v_.store(v, std::memory_order_relaxed); }

    /** Add a delta; supported for integral and floating T (C++20). */
    T
    fetchAdd(T delta) noexcept
    {
        return v_.fetch_add(delta, std::memory_order_relaxed);
    }

  private:
    std::atomic<T> v_;
};

} // namespace util
} // namespace pcon

#endif // PCON_UTIL_SYNC_H
