/**
 * @file
 * Slab/bump allocation for hot-path node storage (DAOS gurt-style).
 *
 * Three layers, all deterministic and single-owner:
 *
 *  - SlabArena: a chunked bump allocator. allocate() carves aligned
 *    bytes out of fixed-size chunks (growing by whole chunks, never
 *    moving prior allocations); reset() recycles every chunk at once
 *    without returning memory to the system. There is no per-object
 *    free — objects freed individually live in a SlabPool instead.
 *
 *  - SlabPool<T>: a fixed-size object pool on top of an arena. Nodes
 *    are carved from the arena and recycled through an intrusive
 *    free list, so steady-state allocate()/release() touches no
 *    global allocator at all. This is where the event-queue callback
 *    nodes, socket segment nodes, and ledger slots live.
 *
 *  - ChunkedVector<T>: an arena-backed dense sequence with stable
 *    element addresses (it grows by chunks, never reallocates), an
 *    O(1) operator[], and forward iteration. Span nodes live here:
 *    references returned by SpanCollector::span() stay valid across
 *    growth, which std::vector could not promise.
 *
 * Lifetime contract: memory obtained from an arena dies with the
 * arena (or at reset()). Under AddressSanitizer, reclaimed regions
 * are poisoned, so a use-after-reset or use-after-release is a hard
 * ASan error instead of silent corruption (see the arena tests).
 * None of this is thread-safe; each arena has exactly one owner
 * (per-queue, per-kernel, per-collector), matching the shard model
 * in DESIGN.md.
 */

#ifndef PCON_UTIL_SLAB_ARENA_H
#define PCON_UTIL_SLAB_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define PCON_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PCON_ASAN 1
#endif
#endif
#ifndef PCON_ASAN
#define PCON_ASAN 0
#endif

#if PCON_ASAN
#include <sanitizer/asan_interface.h>
#define PCON_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define PCON_UNPOISON(addr, size) \
    ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define PCON_POISON(addr, size) ((void)(addr), (void)(size))
#define PCON_UNPOISON(addr, size) ((void)(addr), (void)(size))
#endif

namespace pcon {
namespace util {

/**
 * Chunked bump allocator. Allocations never move; reset() recycles
 * all chunks in O(chunks) without freeing them.
 */
class SlabArena
{
  public:
    /** Default chunk payload size (64 KiB). */
    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

    /**
     * @param chunk_bytes Payload bytes per chunk; allocations larger
     *        than this get a dedicated oversize chunk.
     */
    explicit SlabArena(std::size_t chunk_bytes = kDefaultChunkBytes);

    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;
    ~SlabArena();

    /**
     * Carve `bytes` aligned to `align` (a power of two <= 64).
     * Never returns nullptr; growth fatal()s only on OOM from the
     * system allocator. A zero-byte request returns a unique,
     * aligned, dereferenceable-for-zero-bytes pointer.
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Typed construct-in-place on arena storage. */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        void *raw = allocate(sizeof(T), alignof(T));
        return ::new (raw) T(std::forward<Args>(args)...);
    }

    /**
     * Recycle every chunk: all outstanding allocations become
     * invalid (and poisoned under ASan). Destructors are NOT run —
     * arenas hold trivially-destructible nodes or nodes whose owner
     * destroys them first. Chunk memory is retained for reuse.
     */
    void reset();

    /** Bytes handed out since construction or the last reset(). */
    std::size_t bytesAllocated() const { return bytesAllocated_; }

    /** Total payload bytes reserved from the system allocator. */
    std::size_t bytesReserved() const { return bytesReserved_; }

    /** Number of chunks owned (regular + oversize). */
    std::size_t chunkCount() const { return chunks_.size(); }

    /** Allocations served since construction or the last reset(). */
    std::uint64_t allocationCount() const { return allocationCount_; }

  private:
    struct Chunk
    {
        unsigned char *data = nullptr;
        std::size_t size = 0;
    };

    /** Sentinel for "no active chunk" (fresh arena or just reset). */
    static constexpr std::size_t kNoChunk =
        static_cast<std::size_t>(-1);

    /** Advance to a reusable or freshly grown chunk. */
    void activateNextChunk(std::size_t min_bytes);

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    /** Index of the chunk currently being bumped. */
    std::size_t activeChunk_ = kNoChunk;
    /** Bump offset within the active chunk. */
    std::size_t offset_ = 0;
    std::size_t bytesAllocated_ = 0;
    std::size_t bytesReserved_ = 0;
    std::uint64_t allocationCount_ = 0;
};

/**
 * Fixed-size object pool over a SlabArena: allocate() pops the free
 * list or bumps the arena; release() runs the destructor and pushes
 * the node back (poisoned under ASan until reused). Node addresses
 * are stable for the node's lifetime.
 */
template <typename T>
class SlabPool
{
  public:
    /** @param arena Backing arena; must outlive the pool. */
    explicit SlabPool(SlabArena &arena) : arena_(arena) {}

    SlabPool(const SlabPool &) = delete;
    SlabPool &operator=(const SlabPool &) = delete;

    template <typename... Args>
    T *
    allocate(Args &&...args)
    {
        void *raw;
        if (freeHead_ != nullptr) {
            FreeNode *node = freeHead_;
            PCON_UNPOISON(node, slotBytes());
            freeHead_ = node->next;
            raw = node;
        } else {
            raw = arena_.allocate(slotBytes(), slotAlign());
            ++capacity_;
        }
        ++live_;
        return ::new (raw) T(std::forward<Args>(args)...);
    }

    /** Destroy the object and recycle its slot. */
    void
    release(T *obj)
    {
        obj->~T();
        FreeNode *node = reinterpret_cast<FreeNode *>(obj);
        node->next = freeHead_;
        freeHead_ = node;
        --live_;
        // Poison all but the embedded free-list link so a stale
        // pointer into the payload trips ASan immediately.
        PCON_POISON(reinterpret_cast<unsigned char *>(node) +
                        sizeof(FreeNode),
                    slotBytes() - sizeof(FreeNode));
    }

    /** Live (allocated, unreleased) objects. */
    std::size_t liveCount() const { return live_; }

    /** Slots ever carved from the arena (live + free-listed). */
    std::size_t capacity() const { return capacity_; }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    static constexpr std::size_t
    slotBytes()
    {
        return sizeof(T) > sizeof(FreeNode) ? sizeof(T)
                                            : sizeof(FreeNode);
    }

    static constexpr std::size_t
    slotAlign()
    {
        return alignof(T) > alignof(FreeNode) ? alignof(T)
                                              : alignof(FreeNode);
    }

    SlabArena &arena_;
    FreeNode *freeHead_ = nullptr;
    std::size_t live_ = 0;
    std::size_t capacity_ = 0;
};

/**
 * Arena-backed sequence with stable element addresses: grows by
 * fixed-size chunks, so push_back() never moves existing elements
 * and references/iterators to existing elements stay valid (only
 * end() is invalidated). Elements are destroyed by clear() and the
 * destructor, in index order.
 */
template <typename T, std::size_t ChunkElems = 256>
class ChunkedVector
{
    static_assert(ChunkElems > 0 && (ChunkElems & (ChunkElems - 1)) == 0,
                  "ChunkElems must be a power of two");

  public:
    ChunkedVector() = default;

    ChunkedVector(const ChunkedVector &) = delete;
    ChunkedVector &operator=(const ChunkedVector &) = delete;

    ChunkedVector(ChunkedVector &&other) noexcept
        : arena_(std::move(other.arena_)),
          chunks_(std::move(other.chunks_)),
          size_(std::exchange(other.size_, 0))
    {
    }

    ChunkedVector &
    operator=(ChunkedVector &&other) noexcept
    {
        if (this != &other) {
            clear();
            arena_ = std::move(other.arena_);
            chunks_ = std::move(other.chunks_);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~ChunkedVector() { clear(); }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if ((size_ & (ChunkElems - 1)) == 0)
            chunks_.push_back(static_cast<T *>(arena_->allocate(
                ChunkElems * sizeof(T), alignof(T))));
        T *slot = chunks_[size_ / ChunkElems] + (size_ % ChunkElems);
        T *obj = ::new (static_cast<void *>(slot))
            T(std::forward<Args>(args)...);
        ++size_;
        return *obj;
    }

    void push_back(const T &value) { emplace_back(value); }
    void push_back(T &&value) { emplace_back(std::move(value)); }

    T &
    operator[](std::size_t i)
    {
        return chunks_[i / ChunkElems][i % ChunkElems];
    }

    const T &
    operator[](std::size_t i) const
    {
        return chunks_[i / ChunkElems][i % ChunkElems];
    }

    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Destroy all elements and recycle the chunks. */
    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            (*this)[i].~T();
        size_ = 0;
        chunks_.clear();
        if (arena_ != nullptr) // moved-from vectors have no arena
            arena_->reset();
    }

    /** Forward iterator (also usable as a const iterator). */
    template <typename CV, typename Ref>
    class Iter
    {
      public:
        Iter(CV *owner, std::size_t index)
            : owner_(owner), index_(index)
        {
        }

        Ref operator*() const { return (*owner_)[index_]; }

        Iter &
        operator++()
        {
            ++index_;
            return *this;
        }

        bool
        operator!=(const Iter &other) const
        {
            return index_ != other.index_;
        }

        bool
        operator==(const Iter &other) const
        {
            return index_ == other.index_;
        }

      private:
        CV *owner_;
        std::size_t index_;
    };

    using iterator = Iter<ChunkedVector, T &>;
    using const_iterator = Iter<const ChunkedVector, const T &>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, size_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    /**
     * unique_ptr keeps the type movable while SlabArena itself stays
     * pinned (outstanding chunk pointers must not move).
     */
    std::unique_ptr<SlabArena> arena_ =
        std::make_unique<SlabArena>(ChunkElems * sizeof(T) + alignof(T));
    std::vector<T *> chunks_;
    std::size_t size_ = 0;
};

} // namespace util
} // namespace pcon

#endif // PCON_UTIL_SLAB_ARENA_H
