/**
 * @file
 * A move-only, small-buffer-optimized callable wrapper for hot
 * paths: util::InlineFunction<R(Args...), N>.
 *
 * std::function is the wrong tool inside the event queue: every
 * move and destruction goes through an indirect "manager" call, and
 * a scheduled event's closure is moved several times between
 * schedule() and fire. InlineFunction stores trivially copyable
 * callables up to N bytes directly in the object, so moves are a
 * flat memcpy and destruction is free — no indirect calls at all.
 * Larger or non-trivial callables (e.g. lambdas capturing a
 * shared_ptr) fall back to one heap allocation and keep working;
 * only their destruction needs an indirect call.
 *
 * Differences from std::function, on purpose:
 *  - move-only (copying a closure in a hot loop is a bug, not a
 *    convenience);
 *  - invoking an empty InlineFunction is undefined (the event queue
 *    never stores empty callbacks; check operator bool first when
 *    in doubt).
 */

#ifndef PCON_UTIL_INLINE_FN_H
#define PCON_UTIL_INLINE_FN_H

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pcon {
namespace util {

template <typename Signature, std::size_t N = 32>
class InlineFunction;

template <typename R, typename... Args, std::size_t N>
class InlineFunction<R(Args...), N>
{
  public:
    InlineFunction() = default;

    InlineFunction(std::nullptr_t) {}

    /** Wrap any callable; lvalues are copied, rvalues moved. */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            invoke_ = [](void *b, Args... args) -> R {
                return (*std::launder(reinterpret_cast<D *>(b)))(
                    std::forward<Args>(args)...);
            };
        } else {
            D *p = new D(std::forward<F>(f));
            std::memcpy(buf_, &p, sizeof(p));
            invoke_ = [](void *b, Args... args) -> R {
                D *q;
                std::memcpy(&q, b, sizeof(q));
                return (*q)(std::forward<Args>(args)...);
            };
            destroy_ = [](void *b) {
                D *q;
                std::memcpy(&q, b, sizeof(q));
                delete q;
            };
        }
    }

    InlineFunction(InlineFunction &&other) noexcept { steal(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            steal(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return invoke_ != nullptr; }

    friend bool
    operator==(const InlineFunction &f, std::nullptr_t)
    {
        return f.invoke_ == nullptr;
    }
    friend bool
    operator!=(const InlineFunction &f, std::nullptr_t)
    {
        return f.invoke_ != nullptr;
    }

    /** Invoke; undefined when empty. */
    R
    operator()(Args... args)
    {
        return invoke_(buf_, std::forward<Args>(args)...);
    }

  private:
    /** Inline iff moves can be a memcpy and destruction a no-op. */
    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= N &&
            alignof(D) <= alignof(std::max_align_t) &&
            std::is_trivially_copyable_v<D> &&
            std::is_trivially_destructible_v<D>;
    }

    void
    reset()
    {
        if (destroy_ != nullptr)
            destroy_(buf_);
        invoke_ = nullptr;
        destroy_ = nullptr;
    }

    /** Take `other`'s state; self must be empty. Works for both the
     *  inline case (trivially copyable payload) and the heap case
     *  (the buffer holds a plain pointer). */
    void
    steal(InlineFunction &other) noexcept
    {
        std::memcpy(buf_, other.buf_, N);
        invoke_ = other.invoke_;
        destroy_ = other.destroy_;
        other.invoke_ = nullptr;
        other.destroy_ = nullptr;
    }

    R (*invoke_)(void *, Args...) = nullptr;
    void (*destroy_)(void *) = nullptr;
    alignas(std::max_align_t) unsigned char buf_[N];
};

} // namespace util
} // namespace pcon

#endif // PCON_UTIL_INLINE_FN_H
