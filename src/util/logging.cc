#include "logging.h"

#include <iostream>

namespace pcon {
namespace util {

namespace {

LogLevel &
thresholdStorage()
{
    static LogLevel threshold = LogLevel::Warn;
    return threshold;
}

LogCounts &
countsStorage()
{
    static LogCounts counts;
    return counts;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return thresholdStorage();
}

void
setLogThreshold(LogLevel level)
{
    thresholdStorage() = level;
}

const LogCounts &
logCounts()
{
    return countsStorage();
}

void
resetLogCounts()
{
    countsStorage() = LogCounts{};
}

void
logMessage(LogLevel level, const std::string &msg)
{
    LogCounts &counts = countsStorage();
    switch (level) {
      case LogLevel::Debug: ++counts.debug; break;
      case LogLevel::Info: ++counts.info; break;
      case LogLevel::Warn: ++counts.warn; break;
      case LogLevel::Error: ++counts.error; break;
    }
    if (static_cast<int>(level) < static_cast<int>(thresholdStorage()))
        return;
    std::cerr << "[" << levelName(level) << "] " << msg << "\n";
}

} // namespace util
} // namespace pcon
