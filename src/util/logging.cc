#include "logging.h"

#include <iostream>

namespace pcon {
namespace util {

namespace {

LogLevel &
thresholdStorage()
{
    static LogLevel threshold = LogLevel::Warn;
    return threshold;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return thresholdStorage();
}

void
setLogThreshold(LogLevel level)
{
    thresholdStorage() = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(thresholdStorage()))
        return;
    std::cerr << "[" << levelName(level) << "] " << msg << "\n";
}

} // namespace util
} // namespace pcon
