#include "logging.h"

#include <iostream>

#include "util/sync.h"

namespace pcon {
namespace util {

namespace {

/**
 * Process-wide logging state. Every shard logs through these, so the
 * threshold and the per-severity tallies live behind one mutex; the
 * emission itself stays inside the critical section so concurrent
 * messages cannot interleave mid-line on stderr.
 */
// pcon-lint: allow(shared-state) the log mutex itself; all state it guards is PCON_GUARDED_BY-annotated below
Mutex gLogMutex;

LogLevel gThreshold PCON_GUARDED_BY(gLogMutex) = LogLevel::Warn;

LogCounts gCounts PCON_GUARDED_BY(gLogMutex);

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    LockGuard lock(gLogMutex);
    return gThreshold;
}

void
setLogThreshold(LogLevel level)
{
    LockGuard lock(gLogMutex);
    gThreshold = level;
}

LogCounts
logCounts()
{
    LockGuard lock(gLogMutex);
    return gCounts;
}

void
resetLogCounts()
{
    LockGuard lock(gLogMutex);
    gCounts = LogCounts{};
}

void
logMessage(LogLevel level, const std::string &msg)
{
    LockGuard lock(gLogMutex);
    switch (level) {
      case LogLevel::Debug: ++gCounts.debug; break;
      case LogLevel::Info: ++gCounts.info; break;
      case LogLevel::Warn: ++gCounts.warn; break;
      case LogLevel::Error: ++gCounts.error; break;
    }
    if (static_cast<int>(level) < static_cast<int>(gThreshold))
        return;
    std::cerr << "[" << levelName(level) << "] " << msg << "\n";
}

} // namespace util
} // namespace pcon
