/**
 * @file
 * Minimal CSV writer for experiment drivers. Rows are written
 * immediately; cells containing separators or quotes are escaped.
 */

#ifndef PCON_UTIL_CSV_H
#define PCON_UTIL_CSV_H

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace pcon {
namespace util {

/**
 * Write comma-separated rows to a file. The file is truncated on
 * construction and flushed on destruction (RAII).
 */
class CsvWriter
{
  public:
    /** Open (truncate) the target file; fatal() when unwritable. */
    explicit CsvWriter(const std::string &path);

    /** Write one row of preformatted cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Convenience: write a row of heterogeneous streamable values. */
    template <typename... Args>
    void
    row(const Args &...args)
    {
        std::vector<std::string> cells;
        cells.reserve(sizeof...(args));
        (cells.push_back(toCell(args)), ...);
        writeRow(cells);
    }

  private:
    template <typename T>
    static std::string
    toCell(const T &value)
    {
        std::ostringstream out;
        out << value;
        return out.str();
    }

    static std::string escape(const std::string &cell);

    std::ofstream out_;
};

} // namespace util
} // namespace pcon

#endif // PCON_UTIL_CSV_H
