#include "span.h"

#include <algorithm>

#include "util/logging.h"

namespace pcon {
namespace trace {

using util::panicIf;

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Root: return "root";
      case SpanKind::Stage: return "stage";
      case SpanKind::Fork: return "fork";
      case SpanKind::Remote: return "remote";
      case SpanKind::Io: return "io";
    }
    return "stage";
}

SpanKind
spanKindFromName(const std::string &name)
{
    if (name == "root")
        return SpanKind::Root;
    if (name == "stage")
        return SpanKind::Stage;
    if (name == "fork")
        return SpanKind::Fork;
    if (name == "remote")
        return SpanKind::Remote;
    if (name == "io")
        return SpanKind::Io;
    util::panic("unknown span kind '", name, "'");
}

SpanCollector::SpanCollector(SpanCollector &&other)
{
    util::LockGuard lock(other.mu_);
    spans_ = std::move(other.spans_);
    roots_ = std::move(other.roots_);
    openCount_ = other.openCount_;
    observer_ = other.observer_;
    other.spans_.clear();
    other.roots_.clear();
    other.openCount_ = 0;
    other.observer_ = nullptr;
}

SpanCollector &
SpanCollector::operator=(SpanCollector &&other)
{
    if (this == &other)
        return *this;
    // Lock ordering: source first, destination second, matching the
    // move ctor; collectors are only moved during single-threaded
    // parse/wiring phases, so no cross-order deadlock partner exists.
    util::LockGuard source(other.mu_);
    util::LockGuard dest(mu_);
    spans_ = std::move(other.spans_);
    roots_ = std::move(other.roots_);
    openCount_ = other.openCount_;
    observer_ = other.observer_;
    other.spans_.clear();
    other.roots_.clear();
    other.openCount_ = 0;
    other.observer_ = nullptr;
    return *this;
}

SpanId
SpanCollector::open(os::RequestId request, int machine,
                    const std::string &name, SpanKind kind,
                    SpanId parent, sim::SimTime now)
{
    util::LockGuard lock(mu_);
    panicIf(request == os::NoRequest, "span without a request");
    panicIf(parent != NoSpan && !validLocked(parent),
            "span parent out of range: ", parent);
    Span s;
    s.id = static_cast<SpanId>(spans_.size()) + 1;
    s.parent = parent;
    s.request = request;
    s.machine = machine;
    s.name = name;
    s.kind = kind;
    s.openedAt = now;
    s.open = true;
    if (kind == SpanKind::Root) {
        panicIf(roots_.count(request) != 0,
                "second root span for request ", request);
        roots_[request] = s.id;
    }
    spans_.push_back(std::move(s));
    ++openCount_;
    if (observer_ != nullptr)
        observer_->onSpanOpened(spans_.back());
    return spans_.back().id;
}

void
SpanCollector::close(SpanId id, sim::SimTime now)
{
    util::LockGuard lock(mu_);
    Span &s = mutableSpan(id);
    if (!s.open)
        return;
    s.open = false;
    s.closedAt = now < s.openedAt ? s.openedAt : now;
    --openCount_;
    if (observer_ != nullptr)
        observer_->onSpanClosed(s);
}

void
SpanCollector::reparent(SpanId id, SpanId parent, SpanKind kind,
                        SpanId remote_parent)
{
    util::LockGuard lock(mu_);
    Span &s = mutableSpan(id);
    panicIf(s.kind == SpanKind::Root, "cannot reparent a root span");
    panicIf(parent != NoSpan && !validLocked(parent),
            "reparent target out of range: ", parent);
    panicIf(parent == id, "span cannot parent itself");
    s.parent = parent;
    s.kind = kind;
    s.remoteParent = remote_parent;
}

void
SpanCollector::charge(SpanId id, util::Joules energy,
                      double cpu_time_ns, util::Cycles cycles,
                      double instructions)
{
    util::LockGuard lock(mu_);
    Span &s = mutableSpan(id);
    s.energyJ += energy;
    s.cpuTimeNs += cpu_time_ns;
    s.cycles += cycles;
    s.instructions += instructions;
    if (observer_ != nullptr)
        observer_->onSpanCharged(s, energy, cpu_time_ns);
}

void
SpanCollector::addIoBytes(SpanId id, double bytes)
{
    util::LockGuard lock(mu_);
    mutableSpan(id).ioBytes += bytes;
}

bool
SpanCollector::valid(SpanId id) const
{
    util::LockGuard lock(mu_);
    return validLocked(id);
}

bool
SpanCollector::validLocked(SpanId id) const
{
    return id >= 1 && id <= spans_.size();
}

const Span &
SpanCollector::span(SpanId id) const
{
    util::LockGuard lock(mu_);
    return spanLocked(id);
}

const Span &
SpanCollector::spanLocked(SpanId id) const
{
    panicIf(!validLocked(id), "unknown span id ", id);
    return spans_[static_cast<std::size_t>(id) - 1];
}

const util::ChunkedVector<Span> &
SpanCollector::spans() const
{
    util::LockGuard lock(mu_);
    return spans_;
}

std::size_t
SpanCollector::size() const
{
    util::LockGuard lock(mu_);
    return spans_.size();
}

std::size_t
SpanCollector::openCount() const
{
    util::LockGuard lock(mu_);
    return openCount_;
}

Span &
SpanCollector::mutableSpan(SpanId id)
{
    panicIf(!validLocked(id), "unknown span id ", id);
    return spans_[static_cast<std::size_t>(id) - 1];
}

SpanId
SpanCollector::rootOf(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    auto it = roots_.find(request);
    return it == roots_.end() ? NoSpan : it->second;
}

std::vector<SpanId>
SpanCollector::requestSpans(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    std::vector<SpanId> out;
    for (const Span &s : spans_)
        if (s.request == request)
            out.push_back(s.id);
    return out;
}

std::vector<SpanId>
SpanCollector::children(SpanId id) const
{
    util::LockGuard lock(mu_);
    std::vector<SpanId> out;
    for (const Span &s : spans_)
        if (s.parent == id)
            out.push_back(s.id);
    return out;
}

std::vector<os::RequestId>
SpanCollector::requests() const
{
    util::LockGuard lock(mu_);
    std::vector<os::RequestId> out;
    for (const Span &s : spans_)
        if (out.empty() ||
            std::find(out.begin(), out.end(), s.request) == out.end())
            out.push_back(s.request);
    std::sort(out.begin(), out.end());
    return out;
}

util::Joules
SpanCollector::requestEnergyJ(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    util::Joules total{0};
    for (const Span &s : spans_)
        if (s.request == request)
            total += s.energyJ;
    return total;
}

util::Joules
SpanCollector::machineEnergyJ(os::RequestId request,
                              int machine) const
{
    util::LockGuard lock(mu_);
    util::Joules total{0};
    for (const Span &s : spans_)
        if (s.request == request && s.machine == machine)
            total += s.energyJ;
    return total;
}

std::vector<int>
SpanCollector::machines() const
{
    util::LockGuard lock(mu_);
    std::vector<int> out;
    for (const Span &s : spans_)
        if (std::find(out.begin(), out.end(), s.machine) == out.end())
            out.push_back(s.machine);
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t
SpanCollector::depthLocked(SpanId id) const
{
    std::size_t d = 0;
    for (SpanId p = spanLocked(id).parent; p != NoSpan;
         p = spanLocked(p).parent) {
        panicIf(d > spans_.size(), "span parent cycle");
        ++d;
    }
    return d;
}

std::vector<SpanId>
SpanCollector::criticalPath(os::RequestId request) const
{
    util::LockGuard lock(mu_);
    SpanId last = NoSpan;
    sim::SimTime last_close = 0;
    std::size_t last_depth = 0;
    for (const Span &s : spans_) {
        if (s.request != request || s.open)
            continue;
        // Ties (several spans closed at the same instant — e.g. the
        // completion sweep) break leaf-ward, then to the smallest id
        // (the ascending scan), so the root never shadows the final
        // stage it merely outlives.
        std::size_t d = depthLocked(s.id);
        if (last == NoSpan || s.closedAt > last_close ||
            (s.closedAt == last_close && d > last_depth)) {
            last = s.id;
            last_close = s.closedAt;
            last_depth = d;
        }
    }
    std::vector<SpanId> path;
    for (SpanId id = last; id != NoSpan; id = spanLocked(id).parent) {
        panicIf(path.size() > spans_.size(), "span parent cycle");
        path.push_back(id);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

void
SpanCollector::addSpan(const Span &span)
{
    util::LockGuard lock(mu_);
    panicIf(span.id != spans_.size() + 1,
            "non-dense span id in addSpan: ", span.id);
    panicIf(span.request == os::NoRequest, "span without a request");
    if (span.kind == SpanKind::Root) {
        panicIf(roots_.count(span.request) != 0,
                "second root span for request ", span.request);
        roots_[span.request] = span.id;
    }
    spans_.push_back(span);
    if (span.open)
        ++openCount_;
    if (observer_ != nullptr) {
        // Reload parity with the live path: opened (totals included),
        // then closed when the dump recorded a finished span.
        observer_->onSpanOpened(spans_.back());
        if (!span.open)
            observer_->onSpanClosed(spans_.back());
    }
}

void
SpanCollector::setObserver(SpanObserver *observer)
{
    util::LockGuard lock(mu_);
    observer_ = observer;
}

} // namespace trace
} // namespace pcon
