#include "span.h"

#include <algorithm>

#include "util/logging.h"

namespace pcon {
namespace trace {

using util::panicIf;

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Root: return "root";
      case SpanKind::Stage: return "stage";
      case SpanKind::Fork: return "fork";
      case SpanKind::Remote: return "remote";
      case SpanKind::Io: return "io";
    }
    return "stage";
}

SpanKind
spanKindFromName(const std::string &name)
{
    if (name == "root")
        return SpanKind::Root;
    if (name == "stage")
        return SpanKind::Stage;
    if (name == "fork")
        return SpanKind::Fork;
    if (name == "remote")
        return SpanKind::Remote;
    if (name == "io")
        return SpanKind::Io;
    util::panic("unknown span kind '", name, "'");
}

SpanId
SpanCollector::open(os::RequestId request, int machine,
                    const std::string &name, SpanKind kind,
                    SpanId parent, sim::SimTime now)
{
    panicIf(request == os::NoRequest, "span without a request");
    panicIf(parent != NoSpan && !valid(parent),
            "span parent out of range: ", parent);
    Span s;
    s.id = static_cast<SpanId>(spans_.size()) + 1;
    s.parent = parent;
    s.request = request;
    s.machine = machine;
    s.name = name;
    s.kind = kind;
    s.openedAt = now;
    s.open = true;
    if (kind == SpanKind::Root) {
        panicIf(roots_.count(request) != 0,
                "second root span for request ", request);
        roots_[request] = s.id;
    }
    spans_.push_back(std::move(s));
    ++openCount_;
    return spans_.back().id;
}

void
SpanCollector::close(SpanId id, sim::SimTime now)
{
    Span &s = mutableSpan(id);
    if (!s.open)
        return;
    s.open = false;
    s.closedAt = now < s.openedAt ? s.openedAt : now;
    --openCount_;
}

void
SpanCollector::reparent(SpanId id, SpanId parent, SpanKind kind,
                        SpanId remote_parent)
{
    Span &s = mutableSpan(id);
    panicIf(s.kind == SpanKind::Root, "cannot reparent a root span");
    panicIf(parent != NoSpan && !valid(parent),
            "reparent target out of range: ", parent);
    panicIf(parent == id, "span cannot parent itself");
    s.parent = parent;
    s.kind = kind;
    s.remoteParent = remote_parent;
}

void
SpanCollector::charge(SpanId id, util::Joules energy,
                      double cpu_time_ns, util::Cycles cycles,
                      double instructions)
{
    Span &s = mutableSpan(id);
    s.energyJ += energy;
    s.cpuTimeNs += cpu_time_ns;
    s.cycles += cycles;
    s.instructions += instructions;
}

void
SpanCollector::addIoBytes(SpanId id, double bytes)
{
    mutableSpan(id).ioBytes += bytes;
}

const Span &
SpanCollector::span(SpanId id) const
{
    panicIf(!valid(id), "unknown span id ", id);
    return spans_[static_cast<std::size_t>(id) - 1];
}

Span &
SpanCollector::mutableSpan(SpanId id)
{
    panicIf(!valid(id), "unknown span id ", id);
    return spans_[static_cast<std::size_t>(id) - 1];
}

SpanId
SpanCollector::rootOf(os::RequestId request) const
{
    auto it = roots_.find(request);
    return it == roots_.end() ? NoSpan : it->second;
}

std::vector<SpanId>
SpanCollector::requestSpans(os::RequestId request) const
{
    std::vector<SpanId> out;
    for (const Span &s : spans_)
        if (s.request == request)
            out.push_back(s.id);
    return out;
}

std::vector<SpanId>
SpanCollector::children(SpanId id) const
{
    std::vector<SpanId> out;
    for (const Span &s : spans_)
        if (s.parent == id)
            out.push_back(s.id);
    return out;
}

std::vector<os::RequestId>
SpanCollector::requests() const
{
    std::vector<os::RequestId> out;
    for (const Span &s : spans_)
        if (out.empty() ||
            std::find(out.begin(), out.end(), s.request) == out.end())
            out.push_back(s.request);
    std::sort(out.begin(), out.end());
    return out;
}

util::Joules
SpanCollector::requestEnergyJ(os::RequestId request) const
{
    util::Joules total{0};
    for (const Span &s : spans_)
        if (s.request == request)
            total += s.energyJ;
    return total;
}

util::Joules
SpanCollector::machineEnergyJ(os::RequestId request,
                              int machine) const
{
    util::Joules total{0};
    for (const Span &s : spans_)
        if (s.request == request && s.machine == machine)
            total += s.energyJ;
    return total;
}

std::vector<int>
SpanCollector::machines() const
{
    std::vector<int> out;
    for (const Span &s : spans_)
        if (std::find(out.begin(), out.end(), s.machine) == out.end())
            out.push_back(s.machine);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<SpanId>
SpanCollector::criticalPath(os::RequestId request) const
{
    auto depth = [this](SpanId id) {
        std::size_t d = 0;
        for (SpanId p = span(id).parent; p != NoSpan;
             p = span(p).parent) {
            panicIf(d > spans_.size(), "span parent cycle");
            ++d;
        }
        return d;
    };
    SpanId last = NoSpan;
    sim::SimTime last_close = 0;
    std::size_t last_depth = 0;
    for (const Span &s : spans_) {
        if (s.request != request || s.open)
            continue;
        // Ties (several spans closed at the same instant — e.g. the
        // completion sweep) break leaf-ward, then to the smallest id
        // (the ascending scan), so the root never shadows the final
        // stage it merely outlives.
        std::size_t d = depth(s.id);
        if (last == NoSpan || s.closedAt > last_close ||
            (s.closedAt == last_close && d > last_depth)) {
            last = s.id;
            last_close = s.closedAt;
            last_depth = d;
        }
    }
    std::vector<SpanId> path;
    for (SpanId id = last; id != NoSpan; id = span(id).parent) {
        panicIf(path.size() > spans_.size(), "span parent cycle");
        path.push_back(id);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

void
SpanCollector::addSpan(const Span &span)
{
    panicIf(span.id != spans_.size() + 1,
            "non-dense span id in addSpan: ", span.id);
    panicIf(span.request == os::NoRequest, "span without a request");
    if (span.kind == SpanKind::Root) {
        panicIf(roots_.count(span.request) != 0,
                "second root span for request ", span.request);
        roots_[span.request] = span.id;
    }
    spans_.push_back(span);
    if (span.open)
        ++openCount_;
}

} // namespace trace
} // namespace pcon
