#include "span_tracer.h"

#include <algorithm>

#include "os/task.h"
#include "util/logging.h"

namespace pcon {
namespace trace {

SpanTracer::SpanTracer(os::Kernel &kernel,
                       core::ContainerManager &manager,
                       SpanCollector &collector, int machine)
    : kernel_(kernel), manager_(manager), collector_(collector),
      machine_(machine)
{
    kernel_.requests().onComplete(
        [this](const os::RequestInfo &info) { completeRequest(info); });
    kernel_.setSpanProvider([this](os::RequestId id) -> std::uint64_t {
        auto it = requests_.find(id);
        if (it == requests_.end())
            return NoSpan;
        // Prefer the span of a task of this request currently
        // on-core (the sender, when called from Socket::send).
        int cores = kernel_.machine().totalCores();
        for (int core = 0; core < cores; ++core) {
            os::Task *t = kernel_.runningTask(core);
            if (t == nullptr || t->context != id)
                continue;
            auto ts = taskSpans_.find(t->id);
            if (ts != taskSpans_.end() &&
                collector_.span(ts->second).request == id)
                return ts->second;
        }
        const RequestState &st = it->second;
        return st.current != NoSpan ? st.current : st.root;
    });
}

sim::SimTime
SpanTracer::now() const
{
    return kernel_.machine().simulation().now();
}

void
SpanTracer::trace(os::RequestId id)
{
    if (id == os::NoRequest || requests_.count(id) != 0)
        return;
    // stateFor only creates state in traceAll mode; force it once.
    bool saved = all_;
    all_ = true;
    stateFor(id);
    all_ = saved;
}

SpanTracer::RequestState *
SpanTracer::stateFor(os::RequestId id)
{
    if (id == os::NoRequest)
        return nullptr;
    auto it = requests_.find(id);
    if (it != requests_.end())
        return &it->second;
    if (!all_)
        return nullptr;
    RequestState st;
    st.root = collector_.rootOf(id);
    if (st.root == NoSpan) {
        // First tracer (cluster-wide) to see the request opens the
        // root at the request's arrival time.
        std::string name = "request";
        sim::SimTime at = now();
        if (kernel_.requests().exists(id)) {
            const os::RequestInfo &info = kernel_.requests().info(id);
            name = info.type.empty() ? name : info.type;
            at = info.created;
        }
        st.root = openSpan(id, name, SpanKind::Root, NoSpan, at);
    }
    if (requestsTraced_ != nullptr)
        requestsTraced_->add();
    return &requests_.emplace(id, st).first->second;
}

SpanId
SpanTracer::openSpan(os::RequestId request, const std::string &name,
                     SpanKind kind, SpanId parent, sim::SimTime at)
{
    SpanId id = collector_.open(request, machine_, name, kind, parent,
                                at);
    if (opened_ != nullptr)
        opened_->add();
    return id;
}

void
SpanTracer::closeSpan(SpanId id, sim::SimTime at)
{
    if (!collector_.span(id).open)
        return;
    collector_.close(id, at);
    if (closed_ != nullptr)
        closed_->add();
}

SpanId
SpanTracer::ensureTaskSpan(os::Task &task, RequestState &st)
{
    auto it = taskSpans_.find(task.id);
    if (it != taskSpans_.end()) {
        const Span &s = collector_.span(it->second);
        if (s.open && s.request == task.context)
            return it->second;
        taskSpans_.erase(it);
    }
    // Lazy stage spans hang off the root; precise causal parents
    // (fork, segment receipt) are set by the dedicated hooks.
    SpanId sp = openSpan(task.context, task.name, SpanKind::Stage,
                         st.root, now());
    taskSpans_[task.id] = sp;
    return sp;
}

void
SpanTracer::chargeDelta(RequestState &st, os::RequestId id,
                        SpanId span)
{
    if (st.completed)
        return;
    core::PowerContainer *c = manager_.container(id);
    if (c == nullptr)
        return;
    util::Joules energy = c->totalEnergyJ();
    double cpu_ns = c->cpuTimeNs();
    util::Cycles cycles{c->events().nonhaltCycles};
    double instructions = c->events().instructions;
    collector_.charge(span, energy - st.seenEnergyJ,
                      cpu_ns - st.seenCpuNs, cycles - st.seenCycles,
                      instructions - st.seenInstructions);
    st.seenEnergyJ = energy;
    st.seenCpuNs = cpu_ns;
    st.seenCycles = cycles;
    st.seenInstructions = instructions;
}

void
SpanTracer::onContextSwitch(int core, os::Task *prev, os::Task *next)
{
    (void)core;
    if (prev != nullptr) {
        RequestState *st = stateFor(prev->context);
        if (st != nullptr && !st->completed) {
            SpanId sp = ensureTaskSpan(*prev, *st);
            chargeDelta(*st, prev->context, sp);
            st->current = sp;
            if (pendingExit_.erase(prev->id) != 0) {
                closeSpan(sp, now());
                taskSpans_.erase(prev->id);
            }
        }
    }
    if (next != nullptr) {
        RequestState *st = stateFor(next->context);
        if (st != nullptr && !st->completed)
            st->current = ensureTaskSpan(*next, *st);
    }
}

void
SpanTracer::onContextRebind(os::Task &task, os::RequestId old_ctx,
                            os::RequestId new_ctx)
{
    RequestState *st_old = stateFor(old_ctx);
    if (st_old != nullptr && !st_old->completed) {
        auto it = taskSpans_.find(task.id);
        if (it != taskSpans_.end() &&
            collector_.span(it->second).request == old_ctx) {
            // The manager just closed the old binding's window; its
            // delta belongs to the stage that ends here.
            chargeDelta(*st_old, old_ctx, it->second);
            closeSpan(it->second, now());
            taskSpans_.erase(it);
        }
    }
    // The hook fires before task.context is reassigned, so the new
    // stage span must be opened against new_ctx explicitly.
    RequestState *st_new = stateFor(new_ctx);
    if (st_new != nullptr && !st_new->completed) {
        auto it = taskSpans_.find(task.id);
        if (it != taskSpans_.end()) {
            const Span &s = collector_.span(it->second);
            if (!s.open || s.request != new_ctx)
                taskSpans_.erase(it);
            else {
                st_new->current = it->second;
                return;
            }
        }
        SpanId sp = openSpan(new_ctx, task.name, SpanKind::Stage,
                             st_new->root, now());
        taskSpans_[task.id] = sp;
        st_new->current = sp;
    }
}

void
SpanTracer::onSamplingInterrupt(int core)
{
    os::Task *task = kernel_.runningTask(core);
    if (task == nullptr)
        return;
    RequestState *st = stateFor(task->context);
    if (st == nullptr || st->completed)
        return;
    chargeDelta(*st, task->context, ensureTaskSpan(*task, *st));
}

void
SpanTracer::onIoComplete(hw::DeviceKind device, os::RequestId context,
                         sim::SimTime busy_time, double bytes)
{
    RequestState *st = stateFor(context);
    if (st == nullptr || st->completed)
        return;
    SpanId parent = st->current != NoSpan ? st->current : st->root;
    sim::SimTime end = now();
    sim::SimTime start = busy_time > 0 && busy_time <= end
                             ? end - busy_time
                             : end;
    SpanId sp = openSpan(context,
                         device == hw::DeviceKind::Disk ? "disk"
                                                        : "net",
                         SpanKind::Io, parent, start);
    // The manager attributed the device energy in its own hook just
    // before this one; the delta lands on the I/O span.
    chargeDelta(*st, context, sp);
    collector_.addIoBytes(sp, bytes);
    closeSpan(sp, end);
    if (ioSpans_ != nullptr)
        ioSpans_->add();
}

void
SpanTracer::onTaskExit(os::Task &task)
{
    RequestState *st = stateFor(task.context);
    auto it = taskSpans_.find(task.id);
    if (it == taskSpans_.end())
        return;
    if (task.core >= 0) {
        // exitTask deschedules after this hook; the final window is
        // charged (and the span closed) at that context switch.
        pendingExit_.insert(task.id);
        return;
    }
    if (st != nullptr && !st->completed)
        chargeDelta(*st, task.context, it->second);
    closeSpan(it->second, now());
    taskSpans_.erase(it);
}

void
SpanTracer::onFork(os::Task &parent, os::Task &child)
{
    RequestState *st = stateFor(parent.context);
    if (st == nullptr || st->completed)
        return;
    SpanId parent_span = ensureTaskSpan(parent, *st);
    auto it = taskSpans_.find(child.id);
    if (it != taskSpans_.end() &&
        collector_.span(it->second).open &&
        collector_.span(it->second).request == child.context) {
        // The child was already switched in during spawn; repoint
        // its lazily-rooted span at the forking stage.
        collector_.reparent(it->second, parent_span, SpanKind::Fork);
    } else {
        SpanId sp = openSpan(child.context, child.name,
                             SpanKind::Fork, parent_span, now());
        taskSpans_[child.id] = sp;
    }
    if (forkLinks_ != nullptr)
        forkLinks_->add();
}

void
SpanTracer::onSegmentReceived(os::Task &task,
                              const os::Segment &segment)
{
    RequestState *st = stateFor(segment.context);
    if (st == nullptr || st->completed)
        return;
    SpanId sender = segment.stats.spanId;
    if (!collector_.valid(sender))
        return;
    bool cross = collector_.span(sender).machine != machine_;
    SpanKind kind = cross ? SpanKind::Remote : SpanKind::Stage;
    SpanId remote = cross ? sender : NoSpan;
    sim::SimTime t = now();

    auto it = taskSpans_.find(task.id);
    SpanId sp = NoSpan;
    if (it != taskSpans_.end() &&
        collector_.span(it->second).open &&
        collector_.span(it->second).request == segment.context) {
        const Span &s = collector_.span(it->second);
        if (s.openedAt == t && s.energyJ == util::Joules(0)) {
            // Span freshly opened by the rebind a moment ago: refine
            // its causal parent in place.
            sp = it->second;
            collector_.reparent(sp, sender, kind, remote);
        } else {
            // Same-context receive (e.g. the dispatcher getting its
            // response back): the receipt starts a new stage.
            chargeDelta(*st, segment.context, it->second);
            closeSpan(it->second, t);
        }
    }
    if (sp == NoSpan) {
        sp = openSpan(segment.context, task.name, kind, sender, t);
        if (cross)
            collector_.reparent(sp, sender, kind, remote);
        taskSpans_[task.id] = sp;
    }
    st->current = sp;
    if (cross) {
        if (segment.stats.present)
            remoteLedger_.observe(segment.context, segment.stats);
        if (remoteLinks_ != nullptr)
            remoteLinks_->add();
    }
}

void
SpanTracer::completeRequest(const os::RequestInfo &info)
{
    auto it = requests_.find(info.id);
    if (it == requests_.end())
        return;
    RequestState &st = it->second;
    if (st.completed)
        return;
    // The ContainerManager (registered before this tracer on the
    // shared request manager) already moved the container to its
    // records; settle the residual against the record so the
    // request's spans on this machine sum to its ledger exactly.
    const std::vector<core::RequestRecord> &records =
        manager_.records();
    for (auto rit = records.rbegin(); rit != records.rend(); ++rit) {
        if (rit->id != info.id)
            continue;
        SpanId target = st.current != NoSpan ? st.current : st.root;
        collector_.charge(target,
                          rit->totalEnergyJ() - st.seenEnergyJ,
                          rit->cpuTimeNs - st.seenCpuNs,
                          util::Cycles{rit->events.nonhaltCycles} -
                              st.seenCycles,
                          rit->events.instructions -
                              st.seenInstructions);
        st.seenEnergyJ = rit->totalEnergyJ();
        st.seenCpuNs = rit->cpuTimeNs;
        st.seenCycles = util::Cycles{rit->events.nonhaltCycles};
        st.seenInstructions = rit->events.instructions;
        break;
    }
    st.completed = true;
    // Close every span this machine still has open for the request
    // and drop the task-span links (tasks may outlive the request).
    for (auto ts = taskSpans_.begin(); ts != taskSpans_.end();) {
        const Span &s = collector_.span(ts->second);
        if (s.request == info.id && s.machine == machine_) {
            pendingExit_.erase(ts->first);
            ts = taskSpans_.erase(ts);
        } else {
            ++ts;
        }
    }
    for (SpanId id : collector_.requestSpans(info.id)) {
        const Span &s = collector_.span(id);
        if (s.open && s.machine == machine_)
            closeSpan(id, info.completed);
    }
}

void
SpanTracer::bindMetrics(telemetry::Registry &registry)
{
    opened_ = &registry.counter("trace.spans_opened");
    closed_ = &registry.counter("trace.spans_closed");
    forkLinks_ = &registry.counter("trace.fork_links");
    remoteLinks_ = &registry.counter("trace.remote_links");
    ioSpans_ = &registry.counter("trace.io_spans");
    requestsTraced_ = &registry.counter("trace.requests_traced");
    telemetry::Gauge &open_gauge = registry.gauge("trace.open_spans");
    telemetry::Gauge &total_gauge =
        registry.gauge("trace.spans_total");
    SpanCollector *collector = &collector_;
    registry.addCollector([collector, &open_gauge, &total_gauge] {
        open_gauge.set(static_cast<double>(collector->openCount()));
        total_gauge.set(static_cast<double>(collector->size()));
    });
}

} // namespace trace
} // namespace pcon
