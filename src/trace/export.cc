#include "export.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/logging.h"

namespace pcon {
namespace trace {

namespace {

/** Root-to-span frame path, ';'-separated. */
std::string
framePath(const SpanCollector &collector, const Span &span)
{
    std::vector<const Span *> chain;
    for (SpanId id = span.id; id != NoSpan;) {
        const Span &s = collector.span(id);
        chain.push_back(&s);
        id = s.parent;
    }
    std::reverse(chain.begin(), chain.end());
    std::string path;
    for (const Span *s : chain) {
        if (!path.empty())
            path += ';';
        if (s->kind == SpanKind::Root)
            path += s->name;
        else
            path += "m" + std::to_string(s->machine) + "." + s->name;
    }
    return path;
}

/**
 * Greedy overlap-lane assignment per machine: spans sorted by
 * (openedAt, id) take the lowest lane free at their open time.
 */
std::map<SpanId, int>
assignLanes(const SpanCollector &collector)
{
    std::map<int, std::vector<const Span *>> per_machine;
    for (const Span &s : collector.spans())
        if (!s.open)
            per_machine[s.machine].push_back(&s);
    std::map<SpanId, int> lanes;
    for (auto &kv : per_machine) {
        std::vector<const Span *> &spans = kv.second;
        std::sort(spans.begin(), spans.end(),
                  [](const Span *a, const Span *b) {
                      if (a->openedAt != b->openedAt)
                          return a->openedAt < b->openedAt;
                      return a->id < b->id;
                  });
        std::vector<sim::SimTime> lane_end;
        for (const Span *s : spans) {
            std::size_t lane = lane_end.size();
            for (std::size_t i = 0; i < lane_end.size(); ++i) {
                if (lane_end[i] <= s->openedAt) {
                    lane = i;
                    break;
                }
            }
            if (lane == lane_end.size())
                lane_end.push_back(0);
            lane_end[lane] = s->closedAt;
            lanes[s->id] = static_cast<int>(lane);
        }
    }
    return lanes;
}

} // namespace

std::string
renderFlamegraph(const SpanCollector &collector)
{
    // Ordered map: merged per unique path, lexicographic output.
    std::map<std::string, long long> stacks;
    for (const Span &s : collector.spans()) {
        if (s.open)
            continue;
        stacks[framePath(collector, s)] +=
            std::llround(s.energyJ.value() * 1e6);
    }
    std::ostringstream out;
    for (const auto &kv : stacks)
        out << kv.first << " " << kv.second << "\n";
    return out.str();
}

void
writeFlamegraph(const SpanCollector &collector, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    util::fatalIf(!out, "cannot open '", path, "' for writing");
    out << renderFlamegraph(collector);
}

void
exportSpansToPerfetto(const SpanCollector &collector,
                      telemetry::PerfettoExporter &exporter)
{
    std::map<SpanId, int> lanes = assignLanes(collector);
    // Slices in id order (deterministic; Perfetto sorts by ts).
    for (const Span &s : collector.spans()) {
        if (s.open)
            continue;
        std::string name = s.name;
        if (s.kind == SpanKind::Root)
            name += " #" + std::to_string(s.request);
        exporter.addSpanSlice(s.machine, lanes[s.id], s.openedAt,
                              s.duration(), name, "energy_uj",
                              s.energyJ.value() * 1e6);
    }
    // One flow arrow per cross-machine edge: starts inside the
    // sender's slice, finishes at the receiver's open edge.
    for (const Span &s : collector.spans()) {
        if (s.open || s.remoteParent == NoSpan)
            continue;
        const Span &sender = collector.span(s.remoteParent);
        if (sender.open)
            continue;
        sim::SimTime start = s.openedAt;
        start = std::max(start, sender.openedAt);
        start = std::min(start, sender.closedAt);
        exporter.addSpanFlow(s.id, true, sender.machine,
                             lanes[sender.id], start);
        exporter.addSpanFlow(s.id, false, s.machine, lanes[s.id],
                             s.openedAt);
    }
}

} // namespace trace
} // namespace pcon
