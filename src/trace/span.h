/**
 * @file
 * Causal request spans. A request's execution is modeled as a tree of
 * spans: one root per request, a stage span per (task, binding)
 * episode, fork spans for children, remote spans for stages stitched
 * across machines via the RequestStatsTag piggyback, and closed I/O
 * spans per device operation. Each span accumulates the energy,
 * on-CPU time, cycles, instructions, and I/O bytes the accounting
 * engine attributed while it was the request's active span, so the
 * per-span values partition the container ledger exactly.
 */

#ifndef PCON_TRACE_SPAN_H
#define PCON_TRACE_SPAN_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "os/request_context.h"
#include "sim/time.h"
#include "util/slab_arena.h"
#include "util/sync.h"
#include "util/units.h"

namespace pcon {
namespace trace {

/** Span identifier; 0 means "no span". Ids are dense (1..size). */
using SpanId = std::uint64_t;

/** The null span. */
constexpr SpanId NoSpan = 0;

/** How a span came to exist (its causal edge to the parent). */
enum class SpanKind
{
    /** The request itself; parentless. */
    Root,
    /** A task executing under the request on this machine. */
    Stage,
    /** A child process created by fork under the request. */
    Fork,
    /** A stage whose causal parent lives on another machine. */
    Remote,
    /** One device operation (closed at the completion interrupt). */
    Io,
};

/** Stable lower-case name of a span kind ("root", "stage", ...). */
const char *spanKindName(SpanKind kind);

/** Parse spanKindName output; panics on unknown names. */
SpanKind spanKindFromName(const std::string &name);

struct Span;

/**
 * Incremental span-stream observer (the feed behind obs::EnergyIndex).
 * A SpanCollector notifies its observer at every mutation so live
 * indices can maintain rollups in O(1) per event instead of scanning
 * the whole trace per query. Callbacks run with the collector's lock
 * held: implementations must not call back into the collector (read
 * the passed Span reference instead) and must be cheap.
 *
 * The addSpan() reload path (JSON dumps) fires onSpanOpened with the
 * fully-formed span (its accumulated totals included) followed by
 * onSpanClosed when the span arrived closed, so an index attached
 * before a reload sees the same totals as one attached live.
 */
class SpanObserver
{
  public:
    virtual ~SpanObserver() = default;

    /** A span was opened (or reloaded via addSpan). `span.energyJ`
     * and friends may be nonzero on the reload path. */
    virtual void onSpanOpened(const Span &span) { (void)span; }

    /** A span was closed; `span.closedAt` is final. */
    virtual void onSpanClosed(const Span &span) { (void)span; }

    /** Activity was charged to a span; deltas are the increments
     * just applied (already folded into `span`). */
    virtual void
    onSpanCharged(const Span &span, util::Joules energy_delta,
                  double cpu_delta_ns)
    {
        (void)span; (void)energy_delta; (void)cpu_delta_ns;
    }
};

/** One node of a request's causal span tree. */
struct Span
{
    SpanId id = NoSpan;
    /** Parent span (NoSpan for roots). May span machines. */
    SpanId parent = NoSpan;
    /**
     * For Remote spans: the sender-side span whose segment caused
     * this one, i.e. the cross-machine flow edge (equals `parent`
     * unless re-parenting moved the span).
     */
    SpanId remoteParent = NoSpan;
    /** Request this span belongs to. */
    os::RequestId request = os::NoRequest;
    /** Machine index the span executed on. */
    int machine = 0;
    /** Stage name (task name, device name, or request type). */
    std::string name;
    SpanKind kind = SpanKind::Stage;
    sim::SimTime openedAt = 0;
    /** Close time; meaningful when !open. */
    sim::SimTime closedAt = 0;
    bool open = true;

    /** Attributed energy while this span was active. */
    util::Joules energyJ{0};
    /** Attributed on-CPU time, nanoseconds. */
    double cpuTimeNs = 0;
    /** Attributed non-halt cycles. */
    util::Cycles cycles{0};
    /** Attributed retired instructions. */
    double instructions = 0;
    /** Device bytes transferred under this span. */
    double ioBytes = 0;

    /** Wall duration (0 while open). */
    sim::SimTime duration() const { return open ? 0 : closedAt - openedAt; }

    /** Attributed energy per second of attributed on-CPU time. */
    util::Watts
    avgPowerW() const
    {
        return cpuTimeNs > 0
                   ? energyJ / util::SimSeconds(cpuTimeNs * 1e-9)
                   : util::Watts(0);
    }
};

/**
 * The span store. One collector may be shared by the SpanTracers of
 * several machines so cross-machine parent edges are ordinary span
 * ids; everything is deterministic (dense ids in open order, ordered
 * maps).
 *
 * Thread safety (shard-readiness, ROADMAP Open item 1): the one
 * collector is exactly the kind of cross-shard shared state the
 * parallel engine introduces — every machine's SpanTracer opens,
 * charges, and closes spans on it. All state is guarded by one
 * annotated util::Mutex. Span nodes live in an arena-backed
 * util::ChunkedVector (ISSUE 8 hot-path pass): growth appends whole
 * chunks and never moves existing nodes, so a reference returned by
 * span() stays valid for the collector's lifetime even across
 * concurrent open()s. Reading a span's *fields* concurrently with a
 * charge() on the same span is still a race; exports and queries over
 * returned references run at shard barriers, when no tracer is
 * mutating.
 */
class SpanCollector
{
  public:
    SpanCollector() = default;

    /**
     * Moves exist for parse-time factories (parseSpanJson returns a
     * freshly built collector by value); they lock the source, so a
     * half-moved collector is never observed, but moving a collector
     * that tracers still reference is a wiring error regardless.
     */
    SpanCollector(SpanCollector &&other);
    SpanCollector &operator=(SpanCollector &&other);

    SpanCollector(const SpanCollector &) = delete;
    SpanCollector &operator=(const SpanCollector &) = delete;

    /** Open a span; returns its id (dense, 1-based). */
    SpanId open(os::RequestId request, int machine,
                const std::string &name, SpanKind kind, SpanId parent,
                sim::SimTime now);

    /** Close a span (idempotent). */
    void close(SpanId id, sim::SimTime now);

    /**
     * Re-point a span's causal parent (fork ancestry discovered after
     * the child was scheduled; segment receipt refining a stage's
     * parent). `remote_parent` marks a cross-machine edge.
     */
    void reparent(SpanId id, SpanId parent, SpanKind kind,
                  SpanId remote_parent = NoSpan);

    /** Accumulate attributed activity into a span. */
    void charge(SpanId id, util::Joules energy, double cpu_time_ns,
                util::Cycles cycles, double instructions);

    /** Accumulate device bytes into a span. */
    void addIoBytes(SpanId id, double bytes);

    /** True when the id names a recorded span. */
    bool valid(SpanId id) const;

    /** Look up a span; panics on invalid ids. */
    const Span &span(SpanId id) const;

    /** All spans, id order (id = index + 1). Chunked storage:
     * iterate with range-for; element addresses are stable. */
    const util::ChunkedVector<Span> &spans() const;

    /** Recorded span count. */
    std::size_t size() const;

    /** Spans still open. */
    std::size_t openCount() const;

    /** Root span of a request (NoSpan when never traced). */
    SpanId rootOf(os::RequestId request) const;

    /** All span ids of a request, ascending. */
    std::vector<SpanId> requestSpans(os::RequestId request) const;

    /** Direct children of a span, ascending id. */
    std::vector<SpanId> children(SpanId id) const;

    /** Requests with at least one span, ascending id. */
    std::vector<os::RequestId> requests() const;

    /** Total attributed energy across a request's spans. */
    util::Joules requestEnergyJ(os::RequestId request) const;

    /** Energy of a request's spans on one machine. */
    util::Joules machineEnergyJ(os::RequestId request,
                                int machine) const;

    /** Machine indices seen across all spans, ascending. */
    std::vector<int> machines() const;

    /**
     * Critical path of a request: the root-to-descendant chain ending
     * at the latest-closing span (ties break to the smaller id).
     * Empty when the request was never traced.
     */
    std::vector<SpanId> criticalPath(os::RequestId request) const;

    /**
     * Append a fully-formed span (JSON reload). The span's id must be
     * size() + 1 — panics otherwise so dumps cannot go sparse.
     */
    void addSpan(const Span &span);

    /**
     * Install (or clear, with nullptr) the incremental observer. At
     * most one is active; obs::EnergyIndex owns this hook. Install
     * before spans are recorded (or rebuild the index afterwards) —
     * the observer is only told about mutations from now on.
     */
    void setObserver(SpanObserver *observer);

  private:
    bool validLocked(SpanId id) const PCON_REQUIRES(mu_);
    const Span &spanLocked(SpanId id) const PCON_REQUIRES(mu_);
    Span &mutableSpan(SpanId id) PCON_REQUIRES(mu_);
    std::size_t depthLocked(SpanId id) const PCON_REQUIRES(mu_);

    mutable util::Mutex mu_;
    /** Arena-chunked so node addresses never move (see class doc). */
    util::ChunkedVector<Span> spans_ PCON_GUARDED_BY(mu_);
    std::map<os::RequestId, SpanId> roots_ PCON_GUARDED_BY(mu_);
    std::size_t openCount_ PCON_GUARDED_BY(mu_) = 0;
    /** Notified under mu_; see SpanObserver's contract. */
    SpanObserver *observer_ PCON_GUARDED_BY(mu_) = nullptr;
};

} // namespace trace
} // namespace pcon

#endif // PCON_TRACE_SPAN_H
