/**
 * @file
 * Offline span-tree analysis: the rendering behind `tools/trace_report`.
 * All functions are pure over a SpanCollector (typically reloaded
 * from a renderSpanJson dump) and return deterministic text, so the
 * CLI is a thin wrapper and tests pin the exact output.
 */

#ifndef PCON_TRACE_REPORT_H
#define PCON_TRACE_REPORT_H

#include <cstddef>
#include <string>

#include "trace/span.h"

namespace pcon {
namespace trace {

/** What fullReport() prints. */
struct ReportOptions
{
    /** Requests listed in the ranking (and detailed below it). */
    std::size_t topN = 5;
    /** Include the per-stage breakdown of each listed request. */
    bool stageBreakdown = true;
    /** Include the critical path of each listed request. */
    bool criticalPath = true;
    /** Include the cross-machine energy imbalance table. */
    bool machineImbalance = true;
};

/**
 * Requests ranked by attributed energy, descending (ties to the
 * smaller id): rank, request id, root name, span count, machine
 * count, total energy, wall time.
 */
std::string reportTopRequests(const SpanCollector &collector,
                              std::size_t top_n);

/**
 * Per-span table of one request (id order): kind, machine, name,
 * energy, average power, on-CPU time, I/O bytes, plus a totals row
 * that reproduces the request's ledger sum.
 */
std::string reportStageBreakdown(const SpanCollector &collector,
                                 os::RequestId request);

/** Root-to-last-close chain of one request with per-hop timing. */
std::string reportCriticalPath(const SpanCollector &collector,
                               os::RequestId request);

/**
 * Per-request energy split across machines with the dominant
 * machine's share — the cross-machine imbalance view for the
 * heterogeneous-cluster workload.
 */
std::string reportMachineImbalance(const SpanCollector &collector);

/** The full report per `opts`. */
std::string fullReport(const SpanCollector &collector,
                       const ReportOptions &opts = {});

/**
 * The full report as a machine-readable JSON document (schema
 * "pcon-trace-report-v1"): per-request summaries in energy rank
 * order with stage breakdowns and critical paths, plus the machine
 * imbalance table, honoring the same `opts` toggles as fullReport().
 * Numeric fields use the text report's fixed precisions (energy
 * 1e-6 J, times 1e-3 ms, power 1e-3 W), so the document is
 * deterministic for a given dump.
 */
std::string reportJson(const SpanCollector &collector,
                       const ReportOptions &opts = {});

} // namespace trace
} // namespace pcon

#endif // PCON_TRACE_REPORT_H
