#include "span_json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace pcon {
namespace trace {

namespace {

/** Shortest round-trippable decimal rendering of a double. */
std::string
numJson(double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    for (int prec = 1; prec < 17; ++prec) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        if (std::strtod(probe, nullptr) == v)
            return probe;
    }
    return buf;
}

/** JSON string escape (quotes, backslashes, control characters). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Minimal recursive-descent parser over the dump schema. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    SpanCollector
    parse()
    {
        SpanCollector out;
        expect('{');
        expectKey("spans");
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
        } else {
            while (true) {
                Span s = parseSpan();
                // Density is a dump invariant; a violated one is a
                // corrupt input, not an internal bug.
                failIf(s.id != out.size() + 1,
                       "non-dense span id in dump");
                out.addSpan(s);
                skipWs();
                char c = next();
                if (c == ']')
                    break;
                failIf(c != ',', "expected ',' or ']' in span list");
            }
        }
        expect('}');
        skipWs();
        failIf(pos_ != text_.size(), "trailing data after span dump");
        return out;
    }

  private:
    [[noreturn]] void
    fail(const char *why)
    {
        util::fatal("span json parse error at byte ", pos_, ": ", why);
    }

    void
    failIf(bool cond, const char *why)
    {
        if (cond)
            fail(why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        failIf(pos_ >= text_.size(), "unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        skipWs();
        failIf(next() != c, "unexpected character");
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = next();
            if (c == '"')
                return out;
            if (c == '\\') {
                char esc = next();
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'u': {
                    failIf(pos_ + 4 > text_.size(),
                           "truncated \\u escape");
                    unsigned value = static_cast<unsigned>(std::strtoul(
                        text_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                    failIf(value > 0x7f,
                           "non-ascii \\u escape unsupported");
                    out += static_cast<char>(value);
                    break;
                  }
                  default:
                    fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    void
    expectKey(const char *key)
    {
        failIf(parseString() != key, "unexpected object key");
        expect(':');
    }

    double
    parseNumber()
    {
        skipWs();
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        failIf(end == start, "expected a number");
        pos_ += static_cast<std::size_t>(end - start);
        return v;
    }

    bool
    parseBool()
    {
        skipWs();
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return false;
        }
        fail("expected true/false");
    }

    Span
    parseSpan()
    {
        static const char *const kFields[] = {
            "id", "parent", "remote_parent", "request", "machine",
            "kind", "name", "opened_ns", "closed_ns", "open",
            "energy_j", "cpu_time_ns", "cycles", "instructions",
            "io_bytes"};
        constexpr unsigned kFieldCount =
            sizeof(kFields) / sizeof(kFields[0]);
        Span s;
        expect('{');
        bool first = true;
        unsigned seen = 0;
        while (true) {
            skipWs();
            if (peek() == '}') {
                ++pos_;
                break;
            }
            if (!first)
                expect(',');
            first = false;
            std::string key = parseString();
            expect(':');
            for (unsigned i = 0; i < kFieldCount; ++i) {
                if (key != kFields[i])
                    continue;
                failIf((seen & (1u << i)) != 0,
                       "duplicate span field");
                seen |= 1u << i;
                break;
            }
            if (key == "id")
                s.id = static_cast<SpanId>(parseNumber());
            else if (key == "parent")
                s.parent = static_cast<SpanId>(parseNumber());
            else if (key == "remote_parent")
                s.remoteParent = static_cast<SpanId>(parseNumber());
            else if (key == "request")
                s.request =
                    static_cast<os::RequestId>(parseNumber());
            else if (key == "machine")
                s.machine = static_cast<int>(parseNumber());
            else if (key == "kind")
                s.kind = spanKindFromName(parseString());
            else if (key == "name")
                s.name = parseString();
            else if (key == "opened_ns")
                s.openedAt =
                    static_cast<sim::SimTime>(parseNumber());
            else if (key == "closed_ns")
                s.closedAt =
                    static_cast<sim::SimTime>(parseNumber());
            else if (key == "open")
                s.open = parseBool();
            else if (key == "energy_j")
                s.energyJ = util::Joules(parseNumber());
            else if (key == "cpu_time_ns")
                s.cpuTimeNs = parseNumber();
            else if (key == "cycles")
                s.cycles = util::Cycles(parseNumber());
            else if (key == "instructions")
                s.instructions = parseNumber();
            else if (key == "io_bytes")
                s.ioBytes = parseNumber();
            else
                fail("unknown span field");
        }
        // Every dump field exactly once — a span object missing any
        // of them is a corrupt or truncated dump.
        failIf(seen != (1u << kFieldCount) - 1,
               "incomplete span object");
        return s;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
renderSpanJson(const SpanCollector &collector)
{
    std::ostringstream out;
    out << "{\"spans\":[";
    bool first = true;
    for (const Span &s : collector.spans()) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "{\"id\":" << s.id << ",\"parent\":" << s.parent
            << ",\"remote_parent\":" << s.remoteParent
            << ",\"request\":" << s.request
            << ",\"machine\":" << s.machine << ",\"kind\":\""
            << spanKindName(s.kind) << "\",\"name\":\""
            << escapeJson(s.name) << "\",\"opened_ns\":" << s.openedAt
            << ",\"closed_ns\":" << s.closedAt << ",\"open\":"
            << (s.open ? "true" : "false")
            << ",\"energy_j\":" << numJson(s.energyJ.value())
            << ",\"cpu_time_ns\":" << numJson(s.cpuTimeNs)
            << ",\"cycles\":" << numJson(s.cycles.value())
            << ",\"instructions\":" << numJson(s.instructions)
            << ",\"io_bytes\":" << numJson(s.ioBytes) << "}";
    }
    out << "\n]}\n";
    return out.str();
}

void
writeSpanJson(const SpanCollector &collector, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    util::fatalIf(!out, "cannot open '", path, "' for writing");
    out << renderSpanJson(collector);
}

SpanCollector
parseSpanJson(const std::string &json)
{
    return Parser(json).parse();
}

SpanCollector
loadSpanJson(const std::string &path)
{
    std::ifstream in(path);
    util::fatalIf(!in, "cannot open '", path, "' for reading");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseSpanJson(buf.str());
}

} // namespace trace
} // namespace pcon
