/**
 * @file
 * Deterministic JSON span dump and reload. The dump is the interface
 * between a traced run and offline analysis (`tools/trace_report`):
 * one object per span in id order, doubles rendered with the
 * shortest round-trippable decimal, so the file is byte-stable and
 * reloading reproduces the collector exactly.
 */

#ifndef PCON_TRACE_SPAN_JSON_H
#define PCON_TRACE_SPAN_JSON_H

#include <string>

#include "trace/span.h"

namespace pcon {
namespace trace {

/** Render every span as `{"spans":[...]}` (one line per span). */
std::string renderSpanJson(const SpanCollector &collector);

/** Write renderSpanJson() to a file (fatal on I/O errors). */
void writeSpanJson(const SpanCollector &collector,
                   const std::string &path);

/**
 * Reload a renderSpanJson() dump into a fresh collector. The parser
 * accepts exactly the dump schema (flat span objects with numeric,
 * string, and boolean fields); anything else is fatal().
 */
SpanCollector parseSpanJson(const std::string &json);

/** Read a file and parseSpanJson() it (fatal on I/O errors). */
SpanCollector loadSpanJson(const std::string &path);

} // namespace trace
} // namespace pcon

#endif // PCON_TRACE_SPAN_JSON_H
