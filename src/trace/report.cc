#include "report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace pcon {
namespace trace {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

/** Energy in joules with microjoule precision. */
std::string
joules(double j)
{
    return fmt("%.6f", j);
}

std::string
millis(sim::SimTime t)
{
    return fmt("%.3f", static_cast<double>(t) * 1e-6);
}

/** Requests ordered by energy desc, id asc on ties. */
std::vector<os::RequestId>
rankedRequests(const SpanCollector &collector)
{
    std::vector<os::RequestId> ids = collector.requests();
    std::sort(ids.begin(), ids.end(),
              [&collector](os::RequestId a, os::RequestId b) {
                  util::Joules ea = collector.requestEnergyJ(a);
                  util::Joules eb = collector.requestEnergyJ(b);
                  if (ea != eb)
                      return ea > eb;
                  return a < b;
              });
    return ids;
}

std::string
rootName(const SpanCollector &collector, os::RequestId request)
{
    SpanId root = collector.rootOf(request);
    return root != NoSpan ? collector.span(root).name : "?";
}

sim::SimTime
requestWall(const SpanCollector &collector, os::RequestId request)
{
    sim::SimTime first = 0;
    sim::SimTime last = 0;
    bool any = false;
    for (SpanId id : collector.requestSpans(request)) {
        const Span &s = collector.span(id);
        if (s.open)
            continue;
        if (!any || s.openedAt < first)
            first = s.openedAt;
        if (!any || s.closedAt > last)
            last = s.closedAt;
        any = true;
    }
    return any ? last - first : 0;
}

} // namespace

std::string
reportTopRequests(const SpanCollector &collector, std::size_t top_n)
{
    std::ostringstream out;
    out << "top requests by energy\n"
        << "rank request name spans machines energy_j wall_ms\n";
    std::vector<os::RequestId> ids = rankedRequests(collector);
    std::size_t shown = 0;
    for (os::RequestId id : ids) {
        if (shown >= top_n)
            break;
        ++shown;
        std::vector<SpanId> spans = collector.requestSpans(id);
        std::vector<int> machines;
        for (SpanId sp : spans) {
            int m = collector.span(sp).machine;
            if (std::find(machines.begin(), machines.end(), m) ==
                machines.end())
                machines.push_back(m);
        }
        out << shown << " " << id << " "
            << rootName(collector, id) << " " << spans.size() << " "
            << machines.size() << " "
            << joules(collector.requestEnergyJ(id).value()) << " "
            << millis(requestWall(collector, id)) << "\n";
    }
    if (shown == 0)
        out << "(no spans)\n";
    return out.str();
}

std::string
reportStageBreakdown(const SpanCollector &collector,
                     os::RequestId request)
{
    std::ostringstream out;
    out << "stages of request " << request << " ("
        << rootName(collector, request) << ")\n"
        << "span parent kind machine name energy_j avg_power_w"
        << " cpu_ms io_bytes\n";
    util::Joules total{0};
    for (SpanId id : collector.requestSpans(request)) {
        const Span &s = collector.span(id);
        out << s.id << " " << s.parent << " " << spanKindName(s.kind)
            << " m" << s.machine << " " << s.name << " "
            << joules(s.energyJ.value()) << " "
            << fmt("%.3f", s.avgPowerW().value())
            << " " << fmt("%.3f", s.cpuTimeNs * 1e-6) << " "
            << fmt("%.0f", s.ioBytes) << "\n";
        total += s.energyJ;
    }
    out << "total " << joules(total.value()) << "\n";
    return out.str();
}

std::string
reportCriticalPath(const SpanCollector &collector,
                   os::RequestId request)
{
    std::ostringstream out;
    out << "critical path of request " << request << "\n"
        << "span kind machine name open_ms close_ms energy_j\n";
    std::vector<SpanId> path = collector.criticalPath(request);
    for (SpanId id : path) {
        const Span &s = collector.span(id);
        out << s.id << " " << spanKindName(s.kind) << " m"
            << s.machine << " " << s.name << " " << millis(s.openedAt)
            << " " << millis(s.closedAt) << " "
            << joules(s.energyJ.value())
            << "\n";
    }
    if (path.empty())
        out << "(no closed spans)\n";
    return out.str();
}

std::string
reportMachineImbalance(const SpanCollector &collector)
{
    std::ostringstream out;
    out << "cross-machine energy imbalance\n"
        << "request name";
    std::vector<int> machines = collector.machines();
    for (int m : machines)
        out << " m" << m << "_j";
    out << " dominant_share\n";
    for (os::RequestId id : collector.requests()) {
        double total = collector.requestEnergyJ(id).value();
        double peak = 0;
        out << id << " " << rootName(collector, id);
        for (int m : machines) {
            double e = collector.machineEnergyJ(id, m).value();
            peak = std::max(peak, e);
            out << " " << joules(e);
        }
        out << " " << fmt("%.3f", total > 0 ? peak / total : 0.0)
            << "\n";
    }
    if (collector.requests().empty())
        out << "(no spans)\n";
    return out.str();
}

std::string
fullReport(const SpanCollector &collector, const ReportOptions &opts)
{
    std::ostringstream out;
    out << reportTopRequests(collector, opts.topN);
    std::vector<os::RequestId> ids = rankedRequests(collector);
    if (ids.size() > opts.topN)
        ids.resize(opts.topN);
    for (os::RequestId id : ids) {
        if (opts.stageBreakdown)
            out << "\n" << reportStageBreakdown(collector, id);
        if (opts.criticalPath)
            out << "\n" << reportCriticalPath(collector, id);
    }
    if (opts.machineImbalance)
        out << "\n" << reportMachineImbalance(collector);
    return out.str();
}

} // namespace trace
} // namespace pcon
