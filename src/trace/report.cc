#include "report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace pcon {
namespace trace {

namespace {

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

/** Energy in joules with microjoule precision. */
std::string
joules(double j)
{
    return fmt("%.6f", j);
}

std::string
millis(sim::SimTime t)
{
    return fmt("%.3f", static_cast<double>(t) * 1e-6);
}

/** Requests ordered by energy desc, id asc on ties. */
std::vector<os::RequestId>
rankedRequests(const SpanCollector &collector)
{
    std::vector<os::RequestId> ids = collector.requests();
    std::sort(ids.begin(), ids.end(),
              [&collector](os::RequestId a, os::RequestId b) {
                  util::Joules ea = collector.requestEnergyJ(a);
                  util::Joules eb = collector.requestEnergyJ(b);
                  if (ea != eb)
                      return ea > eb;
                  return a < b;
              });
    return ids;
}

std::string
rootName(const SpanCollector &collector, os::RequestId request)
{
    SpanId root = collector.rootOf(request);
    return root != NoSpan ? collector.span(root).name : "?";
}

/** JSON string escaping for span/root names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

sim::SimTime
requestWall(const SpanCollector &collector, os::RequestId request)
{
    sim::SimTime first = 0;
    sim::SimTime last = 0;
    bool any = false;
    for (SpanId id : collector.requestSpans(request)) {
        const Span &s = collector.span(id);
        if (s.open)
            continue;
        if (!any || s.openedAt < first)
            first = s.openedAt;
        if (!any || s.closedAt > last)
            last = s.closedAt;
        any = true;
    }
    return any ? last - first : 0;
}

} // namespace

std::string
reportTopRequests(const SpanCollector &collector, std::size_t top_n)
{
    std::ostringstream out;
    out << "top requests by energy\n"
        << "rank request name spans machines energy_j wall_ms\n";
    std::vector<os::RequestId> ids = rankedRequests(collector);
    std::size_t shown = 0;
    for (os::RequestId id : ids) {
        if (shown >= top_n)
            break;
        ++shown;
        std::vector<SpanId> spans = collector.requestSpans(id);
        std::vector<int> machines;
        for (SpanId sp : spans) {
            int m = collector.span(sp).machine;
            if (std::find(machines.begin(), machines.end(), m) ==
                machines.end())
                machines.push_back(m);
        }
        out << shown << " " << id << " "
            << rootName(collector, id) << " " << spans.size() << " "
            << machines.size() << " "
            << joules(collector.requestEnergyJ(id).value()) << " "
            << millis(requestWall(collector, id)) << "\n";
    }
    if (shown == 0)
        out << "(no spans)\n";
    return out.str();
}

std::string
reportStageBreakdown(const SpanCollector &collector,
                     os::RequestId request)
{
    std::ostringstream out;
    out << "stages of request " << request << " ("
        << rootName(collector, request) << ")\n"
        << "span parent kind machine name energy_j avg_power_w"
        << " cpu_ms io_bytes\n";
    util::Joules total{0};
    for (SpanId id : collector.requestSpans(request)) {
        const Span &s = collector.span(id);
        out << s.id << " " << s.parent << " " << spanKindName(s.kind)
            << " m" << s.machine << " " << s.name << " "
            << joules(s.energyJ.value()) << " "
            << fmt("%.3f", s.avgPowerW().value())
            << " " << fmt("%.3f", s.cpuTimeNs * 1e-6) << " "
            << fmt("%.0f", s.ioBytes) << "\n";
        total += s.energyJ;
    }
    out << "total " << joules(total.value()) << "\n";
    return out.str();
}

std::string
reportCriticalPath(const SpanCollector &collector,
                   os::RequestId request)
{
    std::ostringstream out;
    out << "critical path of request " << request << "\n"
        << "span kind machine name open_ms close_ms energy_j\n";
    std::vector<SpanId> path = collector.criticalPath(request);
    for (SpanId id : path) {
        const Span &s = collector.span(id);
        out << s.id << " " << spanKindName(s.kind) << " m"
            << s.machine << " " << s.name << " " << millis(s.openedAt)
            << " " << millis(s.closedAt) << " "
            << joules(s.energyJ.value())
            << "\n";
    }
    if (path.empty())
        out << "(no closed spans)\n";
    return out.str();
}

std::string
reportMachineImbalance(const SpanCollector &collector)
{
    std::ostringstream out;
    out << "cross-machine energy imbalance\n"
        << "request name";
    std::vector<int> machines = collector.machines();
    for (int m : machines)
        out << " m" << m << "_j";
    out << " dominant_share\n";
    for (os::RequestId id : collector.requests()) {
        double total = collector.requestEnergyJ(id).value();
        double peak = 0;
        out << id << " " << rootName(collector, id);
        for (int m : machines) {
            double e = collector.machineEnergyJ(id, m).value();
            peak = std::max(peak, e);
            out << " " << joules(e);
        }
        out << " " << fmt("%.3f", total > 0 ? peak / total : 0.0)
            << "\n";
    }
    if (collector.requests().empty())
        out << "(no spans)\n";
    return out.str();
}

std::string
fullReport(const SpanCollector &collector, const ReportOptions &opts)
{
    std::ostringstream out;
    out << reportTopRequests(collector, opts.topN);
    std::vector<os::RequestId> ids = rankedRequests(collector);
    if (ids.size() > opts.topN)
        ids.resize(opts.topN);
    for (os::RequestId id : ids) {
        if (opts.stageBreakdown)
            out << "\n" << reportStageBreakdown(collector, id);
        if (opts.criticalPath)
            out << "\n" << reportCriticalPath(collector, id);
    }
    if (opts.machineImbalance)
        out << "\n" << reportMachineImbalance(collector);
    return out.str();
}

std::string
reportJson(const SpanCollector &collector, const ReportOptions &opts)
{
    std::ostringstream out;
    out << "{\"schema\":\"pcon-trace-report-v1\",\"requests\":[";
    std::vector<os::RequestId> ids = rankedRequests(collector);
    if (ids.size() > opts.topN)
        ids.resize(opts.topN);
    bool first_req = true;
    for (os::RequestId id : ids) {
        if (!first_req)
            out << ",";
        first_req = false;
        std::vector<SpanId> spans = collector.requestSpans(id);
        std::vector<int> machines;
        for (SpanId sp : spans) {
            int m = collector.span(sp).machine;
            if (std::find(machines.begin(), machines.end(), m) ==
                machines.end())
                machines.push_back(m);
        }
        out << "{\"request\":" << id << ",\"root\":\""
            << jsonEscape(rootName(collector, id)) << "\",\"spans\":"
            << spans.size() << ",\"machines\":" << machines.size()
            << ",\"energy_j\":"
            << joules(collector.requestEnergyJ(id).value())
            << ",\"wall_ms\":" << millis(requestWall(collector, id));
        if (opts.stageBreakdown) {
            out << ",\"stages\":[";
            bool first = true;
            for (SpanId sp : spans) {
                const Span &s = collector.span(sp);
                if (!first)
                    out << ",";
                first = false;
                out << "{\"span\":" << s.id << ",\"parent\":"
                    << s.parent << ",\"kind\":\""
                    << spanKindName(s.kind) << "\",\"machine\":"
                    << s.machine << ",\"name\":\""
                    << jsonEscape(s.name) << "\",\"energy_j\":"
                    << joules(s.energyJ.value())
                    << ",\"avg_power_w\":"
                    << fmt("%.3f", s.avgPowerW().value())
                    << ",\"cpu_ms\":"
                    << fmt("%.3f", s.cpuTimeNs * 1e-6)
                    << ",\"io_bytes\":" << fmt("%.0f", s.ioBytes)
                    << "}";
            }
            out << "]";
        }
        if (opts.criticalPath) {
            out << ",\"critical_path\":[";
            bool first = true;
            for (SpanId sp : collector.criticalPath(id)) {
                const Span &s = collector.span(sp);
                if (!first)
                    out << ",";
                first = false;
                out << "{\"span\":" << s.id << ",\"kind\":\""
                    << spanKindName(s.kind) << "\",\"machine\":"
                    << s.machine << ",\"name\":\""
                    << jsonEscape(s.name) << "\",\"open_ms\":"
                    << millis(s.openedAt) << ",\"close_ms\":"
                    << millis(s.closedAt) << ",\"energy_j\":"
                    << joules(s.energyJ.value()) << "}";
            }
            out << "]";
        }
        out << "}";
    }
    out << "]";
    if (opts.machineImbalance) {
        out << ",\"machine_imbalance\":[";
        std::vector<int> machines = collector.machines();
        bool first = true;
        for (os::RequestId id : collector.requests()) {
            if (!first)
                out << ",";
            first = false;
            double total = collector.requestEnergyJ(id).value();
            double peak = 0;
            out << "{\"request\":" << id << ",\"root\":\""
                << jsonEscape(rootName(collector, id))
                << "\",\"per_machine_j\":{";
            bool first_m = true;
            for (int m : machines) {
                double e = collector.machineEnergyJ(id, m).value();
                peak = std::max(peak, e);
                if (!first_m)
                    out << ",";
                first_m = false;
                out << "\"m" << m << "\":" << joules(e);
            }
            out << "},\"dominant_share\":"
                << fmt("%.3f", total > 0 ? peak / total : 0.0)
                << "}";
        }
        out << "]";
    }
    out << "}";
    return out.str();
}

} // namespace trace
} // namespace pcon
