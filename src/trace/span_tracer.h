/**
 * @file
 * The span-building kernel instrumentation. A SpanTracer registers as
 * KernelHooks *after* the ContainerManager (so accounting totals are
 * fresh at every callback) and converts the hook stream into the
 * causal span tree of span.h: stage spans per (task, binding)
 * episode, fork children, closed I/O spans, and — via the span id
 * stamped into every outgoing RequestStatsTag — stages stitched to
 * their sender across machines. Energy attribution is exact by
 * construction: at every hook the tracer charges the request's
 * container *delta* since the last hook to the span that caused it,
 * and the completion listener settles the residual, so a request's
 * spans always sum to its container ledger.
 */

#ifndef PCON_TRACE_SPAN_TRACER_H
#define PCON_TRACE_SPAN_TRACER_H

#include <map>
#include <set>

#include "core/container_manager.h"
#include "core/remote_accounting.h"
#include "os/kernel.h"
#include "telemetry/registry.h"
#include "trace/span.h"

namespace pcon {
namespace trace {

/**
 * One machine's span builder. Several tracers (one per kernel) may
 * share a SpanCollector; cross-machine parent edges are then ordinary
 * span ids and flamegraphs/reports cover the whole cluster.
 */
// pcon-lint: shard-owned
class SpanTracer : public os::KernelHooks
{
  public:
    /**
     * @param kernel Kernel to instrument. The caller must register
     *        the tracer *after* the ContainerManager:
     *        kernel.addHooks(&tracer). The tracer installs the
     *        kernel's span provider (Kernel::setSpanProvider).
     * @param manager Accounting engine charges are read from.
     * @param collector Span store (shareable across machines).
     * @param machine Machine index recorded on every span.
     */
    SpanTracer(os::Kernel &kernel, core::ContainerManager &manager,
               SpanCollector &collector, int machine);

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** Trace one request (call before or while it runs). */
    void trace(os::RequestId id);

    /** Trace every request this tracer's kernel sees. */
    void traceAll() { all_ = true; }

    /** True when the request is (or was) being traced. */
    bool tracing(os::RequestId id) const
    {
        return requests_.count(id) != 0;
    }

    /**
     * Publish trace.* metrics: spans_opened/spans_closed/fork_links/
     * remote_links/io_spans/requests_traced counters and an
     * open_spans gauge refreshed on every registry collect.
     */
    void bindMetrics(telemetry::Registry &registry);

    /**
     * Cross-machine stats merged from tags whose span id resolved to
     * another machine's span (Section 3.4 dispatcher-side view).
     */
    const core::RemoteRequestLedger &remoteLedger() const
    {
        return remoteLedger_;
    }

    /** The shared span store. */
    SpanCollector &collector() { return collector_; }

    // --- KernelHooks ---
    void onContextSwitch(int core, os::Task *prev,
                         os::Task *next) override;
    void onContextRebind(os::Task &task, os::RequestId old_ctx,
                         os::RequestId new_ctx) override;
    void onSamplingInterrupt(int core) override;
    void onIoComplete(hw::DeviceKind device, os::RequestId context,
                      sim::SimTime busy_time, double bytes) override;
    void onTaskExit(os::Task &task) override;
    void onFork(os::Task &parent, os::Task &child) override;
    void onSegmentReceived(os::Task &task,
                           const os::Segment &segment) override;

  private:
    /** Per-request charging state on this machine. */
    struct RequestState
    {
        SpanId root = NoSpan;
        /** Most recent active span (causal anchor for sends/IO). */
        SpanId current = NoSpan;
        /** Container totals already charged into spans. */
        util::Joules seenEnergyJ{0};
        double seenCpuNs = 0;
        util::Cycles seenCycles{0};
        double seenInstructions = 0;
        bool completed = false;
    };

    sim::SimTime now() const;
    /** State for a traced request; nullptr when untraced. */
    RequestState *stateFor(os::RequestId id);
    /** The task's open stage span, created lazily under the root. */
    SpanId ensureTaskSpan(os::Task &task, RequestState &st);
    /** Charge the container delta since the last hook to `span`. */
    void chargeDelta(RequestState &st, os::RequestId id, SpanId span);
    SpanId openSpan(os::RequestId request, const std::string &name,
                    SpanKind kind, SpanId parent, sim::SimTime at);
    void closeSpan(SpanId id, sim::SimTime at);
    void completeRequest(const os::RequestInfo &info);

    os::Kernel &kernel_;
    core::ContainerManager &manager_;
    SpanCollector &collector_;
    int machine_;
    bool all_ = false;
    std::map<os::RequestId, RequestState> requests_;
    /** Open stage span of each task (this machine). */
    std::map<os::TaskId, SpanId> taskSpans_;
    /** Tasks whose span closes at the exit switch-out. */
    std::set<os::TaskId> pendingExit_;
    core::RemoteRequestLedger remoteLedger_;

    telemetry::Counter *opened_ = nullptr;
    telemetry::Counter *closed_ = nullptr;
    telemetry::Counter *forkLinks_ = nullptr;
    telemetry::Counter *remoteLinks_ = nullptr;
    telemetry::Counter *ioSpans_ = nullptr;
    telemetry::Counter *requestsTraced_ = nullptr;
};

} // namespace trace
} // namespace pcon

#endif // PCON_TRACE_SPAN_TRACER_H
