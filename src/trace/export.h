/**
 * @file
 * Span-tree exports: a collapsed-stack energy flamegraph (one
 * `frame;frame;... value` line per unique root-to-span path, value in
 * integer microjoules — the format flamegraph.pl and speedscope
 * consume) and Perfetto span tracks with cross-machine flow arrows
 * layered into an existing telemetry::PerfettoExporter. Both outputs
 * are byte-stable for a deterministic simulation run.
 */

#ifndef PCON_TRACE_EXPORT_H
#define PCON_TRACE_EXPORT_H

#include <string>

#include "telemetry/perfetto.h"
#include "trace/span.h"

namespace pcon {
namespace trace {

/**
 * Render the collapsed-stack energy flamegraph of every closed span.
 * Frames are `name` for roots and `m<machine>.<name>` for nested
 * spans; lines are merged per unique path and sorted
 * lexicographically, so the output is byte-stable. Values are
 * llround(energyJ * 1e6) microjoules.
 */
std::string renderFlamegraph(const SpanCollector &collector);

/** Write renderFlamegraph() to a file (fatal on I/O errors). */
void writeFlamegraph(const SpanCollector &collector,
                     const std::string &path);

/**
 * Emit every closed span as a slice on the exporter's span tracks
 * (pid 10+machine, one tid per overlap lane, greedily assigned in
 * (openedAt, id) order) plus one ph:"s"/"f" flow pair per
 * cross-machine edge (flow id = the receiving span's id). Call after
 * the run completes, before exporter.write().
 */
void exportSpansToPerfetto(const SpanCollector &collector,
                           telemetry::PerfettoExporter &exporter);

} // namespace trace
} // namespace pcon

#endif // PCON_TRACE_EXPORT_H
