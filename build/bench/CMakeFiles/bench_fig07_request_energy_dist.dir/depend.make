# Empty dependencies file for bench_fig07_request_energy_dist.
# This may be replaced when dependencies are built.
