# Empty compiler generated dependencies file for bench_sec41_calibration.
# This may be replaced when dependencies are built.
