file(REMOVE_RECURSE
  "CMakeFiles/bench_sec41_calibration.dir/bench_sec41_calibration.cc.o"
  "CMakeFiles/bench_sec41_calibration.dir/bench_sec41_calibration.cc.o.d"
  "bench_sec41_calibration"
  "bench_sec41_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec41_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
