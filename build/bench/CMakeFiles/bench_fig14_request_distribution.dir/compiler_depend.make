# Empty compiler generated dependencies file for bench_fig14_request_distribution.
# This may be replaced when dependencies are built.
