# Empty dependencies file for bench_fig12_throttle_fairness.
# This may be replaced when dependencies are built.
