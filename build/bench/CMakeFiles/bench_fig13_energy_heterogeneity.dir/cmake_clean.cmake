file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_energy_heterogeneity.dir/bench_fig13_energy_heterogeneity.cc.o"
  "CMakeFiles/bench_fig13_energy_heterogeneity.dir/bench_fig13_energy_heterogeneity.cc.o.d"
  "bench_fig13_energy_heterogeneity"
  "bench_fig13_energy_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_energy_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
