file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_alignment_xcorr.dir/bench_fig02_alignment_xcorr.cc.o"
  "CMakeFiles/bench_fig02_alignment_xcorr.dir/bench_fig02_alignment_xcorr.cc.o.d"
  "bench_fig02_alignment_xcorr"
  "bench_fig02_alignment_xcorr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_alignment_xcorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
