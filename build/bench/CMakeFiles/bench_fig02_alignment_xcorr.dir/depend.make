# Empty dependencies file for bench_fig02_alignment_xcorr.
# This may be replaced when dependencies are built.
