# Empty compiler generated dependencies file for bench_sec35_overhead.
# This may be replaced when dependencies are built.
