file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_gae_background.dir/bench_fig09_gae_background.cc.o"
  "CMakeFiles/bench_fig09_gae_background.dir/bench_fig09_gae_background.cc.o.d"
  "bench_fig09_gae_background"
  "bench_fig09_gae_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_gae_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
