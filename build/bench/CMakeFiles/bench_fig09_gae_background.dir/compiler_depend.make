# Empty compiler generated dependencies file for bench_fig09_gae_background.
# This may be replaced when dependencies are built.
