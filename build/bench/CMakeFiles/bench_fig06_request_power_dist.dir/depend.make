# Empty dependencies file for bench_fig06_request_power_dist.
# This may be replaced when dependencies are built.
