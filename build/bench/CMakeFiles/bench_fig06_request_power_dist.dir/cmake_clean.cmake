file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_request_power_dist.dir/bench_fig06_request_power_dist.cc.o"
  "CMakeFiles/bench_fig06_request_power_dist.dir/bench_fig06_request_power_dist.cc.o.d"
  "bench_fig06_request_power_dist"
  "bench_fig06_request_power_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_request_power_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
