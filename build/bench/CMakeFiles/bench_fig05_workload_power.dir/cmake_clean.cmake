file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_workload_power.dir/bench_fig05_workload_power.cc.o"
  "CMakeFiles/bench_fig05_workload_power.dir/bench_fig05_workload_power.cc.o.d"
  "bench_fig05_workload_power"
  "bench_fig05_workload_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_workload_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
