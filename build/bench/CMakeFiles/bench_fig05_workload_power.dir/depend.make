# Empty dependencies file for bench_fig05_workload_power.
# This may be replaced when dependencies are built.
