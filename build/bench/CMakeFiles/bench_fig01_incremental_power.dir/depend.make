# Empty dependencies file for bench_fig01_incremental_power.
# This may be replaced when dependencies are built.
