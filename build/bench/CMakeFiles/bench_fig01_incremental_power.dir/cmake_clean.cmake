file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_incremental_power.dir/bench_fig01_incremental_power.cc.o"
  "CMakeFiles/bench_fig01_incremental_power.dir/bench_fig01_incremental_power.cc.o.d"
  "bench_fig01_incremental_power"
  "bench_fig01_incremental_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_incremental_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
