file(REMOVE_RECURSE
  "libpcon_util.a"
)
