file(REMOVE_RECURSE
  "CMakeFiles/pcon_util.dir/csv.cc.o"
  "CMakeFiles/pcon_util.dir/csv.cc.o.d"
  "CMakeFiles/pcon_util.dir/logging.cc.o"
  "CMakeFiles/pcon_util.dir/logging.cc.o.d"
  "CMakeFiles/pcon_util.dir/stats.cc.o"
  "CMakeFiles/pcon_util.dir/stats.cc.o.d"
  "libpcon_util.a"
  "libpcon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
