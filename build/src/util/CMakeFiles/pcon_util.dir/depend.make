# Empty dependencies file for pcon_util.
# This may be replaced when dependencies are built.
