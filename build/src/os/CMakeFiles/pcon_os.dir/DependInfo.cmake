
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/device.cc" "src/os/CMakeFiles/pcon_os.dir/device.cc.o" "gcc" "src/os/CMakeFiles/pcon_os.dir/device.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/pcon_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/pcon_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/request_context.cc" "src/os/CMakeFiles/pcon_os.dir/request_context.cc.o" "gcc" "src/os/CMakeFiles/pcon_os.dir/request_context.cc.o.d"
  "/root/repo/src/os/task.cc" "src/os/CMakeFiles/pcon_os.dir/task.cc.o" "gcc" "src/os/CMakeFiles/pcon_os.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pcon_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
