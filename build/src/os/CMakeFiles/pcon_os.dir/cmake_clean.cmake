file(REMOVE_RECURSE
  "CMakeFiles/pcon_os.dir/device.cc.o"
  "CMakeFiles/pcon_os.dir/device.cc.o.d"
  "CMakeFiles/pcon_os.dir/kernel.cc.o"
  "CMakeFiles/pcon_os.dir/kernel.cc.o.d"
  "CMakeFiles/pcon_os.dir/request_context.cc.o"
  "CMakeFiles/pcon_os.dir/request_context.cc.o.d"
  "CMakeFiles/pcon_os.dir/task.cc.o"
  "CMakeFiles/pcon_os.dir/task.cc.o.d"
  "libpcon_os.a"
  "libpcon_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcon_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
