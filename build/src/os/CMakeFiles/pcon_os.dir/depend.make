# Empty dependencies file for pcon_os.
# This may be replaced when dependencies are built.
