file(REMOVE_RECURSE
  "libpcon_os.a"
)
