
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alignment.cc" "src/core/CMakeFiles/pcon_core.dir/alignment.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/alignment.cc.o.d"
  "/root/repo/src/core/anomaly.cc" "src/core/CMakeFiles/pcon_core.dir/anomaly.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/anomaly.cc.o.d"
  "/root/repo/src/core/calibration.cc" "src/core/CMakeFiles/pcon_core.dir/calibration.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/calibration.cc.o.d"
  "/root/repo/src/core/conditioning.cc" "src/core/CMakeFiles/pcon_core.dir/conditioning.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/conditioning.cc.o.d"
  "/root/repo/src/core/container_manager.cc" "src/core/CMakeFiles/pcon_core.dir/container_manager.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/container_manager.cc.o.d"
  "/root/repo/src/core/distribution.cc" "src/core/CMakeFiles/pcon_core.dir/distribution.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/distribution.cc.o.d"
  "/root/repo/src/core/energy_quota.cc" "src/core/CMakeFiles/pcon_core.dir/energy_quota.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/energy_quota.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/pcon_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/model_store.cc" "src/core/CMakeFiles/pcon_core.dir/model_store.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/model_store.cc.o.d"
  "/root/repo/src/core/power_model.cc" "src/core/CMakeFiles/pcon_core.dir/power_model.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/power_model.cc.o.d"
  "/root/repo/src/core/prediction.cc" "src/core/CMakeFiles/pcon_core.dir/prediction.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/prediction.cc.o.d"
  "/root/repo/src/core/profiles.cc" "src/core/CMakeFiles/pcon_core.dir/profiles.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/profiles.cc.o.d"
  "/root/repo/src/core/recalibration.cc" "src/core/CMakeFiles/pcon_core.dir/recalibration.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/recalibration.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/pcon_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/pcon_core.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/pcon_os.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/pcon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pcon_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
