file(REMOVE_RECURSE
  "libpcon_core.a"
)
