file(REMOVE_RECURSE
  "CMakeFiles/pcon_core.dir/alignment.cc.o"
  "CMakeFiles/pcon_core.dir/alignment.cc.o.d"
  "CMakeFiles/pcon_core.dir/anomaly.cc.o"
  "CMakeFiles/pcon_core.dir/anomaly.cc.o.d"
  "CMakeFiles/pcon_core.dir/calibration.cc.o"
  "CMakeFiles/pcon_core.dir/calibration.cc.o.d"
  "CMakeFiles/pcon_core.dir/conditioning.cc.o"
  "CMakeFiles/pcon_core.dir/conditioning.cc.o.d"
  "CMakeFiles/pcon_core.dir/container_manager.cc.o"
  "CMakeFiles/pcon_core.dir/container_manager.cc.o.d"
  "CMakeFiles/pcon_core.dir/distribution.cc.o"
  "CMakeFiles/pcon_core.dir/distribution.cc.o.d"
  "CMakeFiles/pcon_core.dir/energy_quota.cc.o"
  "CMakeFiles/pcon_core.dir/energy_quota.cc.o.d"
  "CMakeFiles/pcon_core.dir/metrics.cc.o"
  "CMakeFiles/pcon_core.dir/metrics.cc.o.d"
  "CMakeFiles/pcon_core.dir/model_store.cc.o"
  "CMakeFiles/pcon_core.dir/model_store.cc.o.d"
  "CMakeFiles/pcon_core.dir/power_model.cc.o"
  "CMakeFiles/pcon_core.dir/power_model.cc.o.d"
  "CMakeFiles/pcon_core.dir/prediction.cc.o"
  "CMakeFiles/pcon_core.dir/prediction.cc.o.d"
  "CMakeFiles/pcon_core.dir/profiles.cc.o"
  "CMakeFiles/pcon_core.dir/profiles.cc.o.d"
  "CMakeFiles/pcon_core.dir/recalibration.cc.o"
  "CMakeFiles/pcon_core.dir/recalibration.cc.o.d"
  "CMakeFiles/pcon_core.dir/trace.cc.o"
  "CMakeFiles/pcon_core.dir/trace.cc.o.d"
  "libpcon_core.a"
  "libpcon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
