# Empty dependencies file for pcon_core.
# This may be replaced when dependencies are built.
