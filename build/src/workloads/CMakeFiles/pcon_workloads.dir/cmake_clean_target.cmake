file(REMOVE_RECURSE
  "libpcon_workloads.a"
)
