# Empty dependencies file for pcon_workloads.
# This may be replaced when dependencies are built.
