
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/app.cc" "src/workloads/CMakeFiles/pcon_workloads.dir/app.cc.o" "gcc" "src/workloads/CMakeFiles/pcon_workloads.dir/app.cc.o.d"
  "/root/repo/src/workloads/apps.cc" "src/workloads/CMakeFiles/pcon_workloads.dir/apps.cc.o" "gcc" "src/workloads/CMakeFiles/pcon_workloads.dir/apps.cc.o.d"
  "/root/repo/src/workloads/client.cc" "src/workloads/CMakeFiles/pcon_workloads.dir/client.cc.o" "gcc" "src/workloads/CMakeFiles/pcon_workloads.dir/client.cc.o.d"
  "/root/repo/src/workloads/cluster.cc" "src/workloads/CMakeFiles/pcon_workloads.dir/cluster.cc.o" "gcc" "src/workloads/CMakeFiles/pcon_workloads.dir/cluster.cc.o.d"
  "/root/repo/src/workloads/event_loop_app.cc" "src/workloads/CMakeFiles/pcon_workloads.dir/event_loop_app.cc.o" "gcc" "src/workloads/CMakeFiles/pcon_workloads.dir/event_loop_app.cc.o.d"
  "/root/repo/src/workloads/experiment.cc" "src/workloads/CMakeFiles/pcon_workloads.dir/experiment.cc.o" "gcc" "src/workloads/CMakeFiles/pcon_workloads.dir/experiment.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/workloads/CMakeFiles/pcon_workloads.dir/microbench.cc.o" "gcc" "src/workloads/CMakeFiles/pcon_workloads.dir/microbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pcon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pcon_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pcon_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/pcon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
