file(REMOVE_RECURSE
  "CMakeFiles/pcon_workloads.dir/app.cc.o"
  "CMakeFiles/pcon_workloads.dir/app.cc.o.d"
  "CMakeFiles/pcon_workloads.dir/apps.cc.o"
  "CMakeFiles/pcon_workloads.dir/apps.cc.o.d"
  "CMakeFiles/pcon_workloads.dir/client.cc.o"
  "CMakeFiles/pcon_workloads.dir/client.cc.o.d"
  "CMakeFiles/pcon_workloads.dir/cluster.cc.o"
  "CMakeFiles/pcon_workloads.dir/cluster.cc.o.d"
  "CMakeFiles/pcon_workloads.dir/event_loop_app.cc.o"
  "CMakeFiles/pcon_workloads.dir/event_loop_app.cc.o.d"
  "CMakeFiles/pcon_workloads.dir/experiment.cc.o"
  "CMakeFiles/pcon_workloads.dir/experiment.cc.o.d"
  "CMakeFiles/pcon_workloads.dir/microbench.cc.o"
  "CMakeFiles/pcon_workloads.dir/microbench.cc.o.d"
  "libpcon_workloads.a"
  "libpcon_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcon_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
