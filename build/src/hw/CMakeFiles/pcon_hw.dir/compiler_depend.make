# Empty compiler generated dependencies file for pcon_hw.
# This may be replaced when dependencies are built.
