file(REMOVE_RECURSE
  "CMakeFiles/pcon_hw.dir/config.cc.o"
  "CMakeFiles/pcon_hw.dir/config.cc.o.d"
  "CMakeFiles/pcon_hw.dir/machine.cc.o"
  "CMakeFiles/pcon_hw.dir/machine.cc.o.d"
  "CMakeFiles/pcon_hw.dir/power_meter.cc.o"
  "CMakeFiles/pcon_hw.dir/power_meter.cc.o.d"
  "libpcon_hw.a"
  "libpcon_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcon_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
