file(REMOVE_RECURSE
  "libpcon_hw.a"
)
