file(REMOVE_RECURSE
  "libpcon_linalg.a"
)
