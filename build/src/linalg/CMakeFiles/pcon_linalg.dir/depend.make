# Empty dependencies file for pcon_linalg.
# This may be replaced when dependencies are built.
