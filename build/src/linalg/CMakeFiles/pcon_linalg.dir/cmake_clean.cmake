file(REMOVE_RECURSE
  "CMakeFiles/pcon_linalg.dir/least_squares.cc.o"
  "CMakeFiles/pcon_linalg.dir/least_squares.cc.o.d"
  "CMakeFiles/pcon_linalg.dir/matrix.cc.o"
  "CMakeFiles/pcon_linalg.dir/matrix.cc.o.d"
  "libpcon_linalg.a"
  "libpcon_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcon_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
