file(REMOVE_RECURSE
  "CMakeFiles/pcon_sim.dir/event_queue.cc.o"
  "CMakeFiles/pcon_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/pcon_sim.dir/rng.cc.o"
  "CMakeFiles/pcon_sim.dir/rng.cc.o.d"
  "CMakeFiles/pcon_sim.dir/simulation.cc.o"
  "CMakeFiles/pcon_sim.dir/simulation.cc.o.d"
  "libpcon_sim.a"
  "libpcon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
