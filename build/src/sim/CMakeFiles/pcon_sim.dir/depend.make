# Empty dependencies file for pcon_sim.
# This may be replaced when dependencies are built.
