file(REMOVE_RECURSE
  "libpcon_sim.a"
)
