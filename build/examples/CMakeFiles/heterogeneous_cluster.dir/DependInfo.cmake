
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/heterogeneous_cluster.cpp" "examples/CMakeFiles/heterogeneous_cluster.dir/heterogeneous_cluster.cpp.o" "gcc" "examples/CMakeFiles/heterogeneous_cluster.dir/heterogeneous_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pcon_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/pcon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pcon_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pcon_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
