file(REMOVE_RECURSE
  "CMakeFiles/power_cap.dir/power_cap.cpp.o"
  "CMakeFiles/power_cap.dir/power_cap.cpp.o.d"
  "power_cap"
  "power_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
