# Empty compiler generated dependencies file for power_cap.
# This may be replaced when dependencies are built.
