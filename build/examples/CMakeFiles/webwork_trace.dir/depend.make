# Empty dependencies file for webwork_trace.
# This may be replaced when dependencies are built.
