file(REMOVE_RECURSE
  "CMakeFiles/webwork_trace.dir/webwork_trace.cpp.o"
  "CMakeFiles/webwork_trace.dir/webwork_trace.cpp.o.d"
  "webwork_trace"
  "webwork_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webwork_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
