file(REMOVE_RECURSE
  "CMakeFiles/event_driven_tracking.dir/event_driven_tracking.cpp.o"
  "CMakeFiles/event_driven_tracking.dir/event_driven_tracking.cpp.o.d"
  "event_driven_tracking"
  "event_driven_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_driven_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
