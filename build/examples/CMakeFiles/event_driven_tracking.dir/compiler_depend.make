# Empty compiler generated dependencies file for event_driven_tracking.
# This may be replaced when dependencies are built.
