
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/actuator_test.cc" "tests/CMakeFiles/test_core.dir/core/actuator_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/actuator_test.cc.o.d"
  "/root/repo/tests/core/alignment_test.cc" "tests/CMakeFiles/test_core.dir/core/alignment_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/alignment_test.cc.o.d"
  "/root/repo/tests/core/anomaly_test.cc" "tests/CMakeFiles/test_core.dir/core/anomaly_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/anomaly_test.cc.o.d"
  "/root/repo/tests/core/container_manager_test.cc" "tests/CMakeFiles/test_core.dir/core/container_manager_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/container_manager_test.cc.o.d"
  "/root/repo/tests/core/energy_quota_test.cc" "tests/CMakeFiles/test_core.dir/core/energy_quota_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/energy_quota_test.cc.o.d"
  "/root/repo/tests/core/misc_test.cc" "tests/CMakeFiles/test_core.dir/core/misc_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/misc_test.cc.o.d"
  "/root/repo/tests/core/model_store_test.cc" "tests/CMakeFiles/test_core.dir/core/model_store_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/model_store_test.cc.o.d"
  "/root/repo/tests/core/model_test.cc" "tests/CMakeFiles/test_core.dir/core/model_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/model_test.cc.o.d"
  "/root/repo/tests/core/policy_test.cc" "tests/CMakeFiles/test_core.dir/core/policy_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/policy_test.cc.o.d"
  "/root/repo/tests/core/recalibration_test.cc" "tests/CMakeFiles/test_core.dir/core/recalibration_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/recalibration_test.cc.o.d"
  "/root/repo/tests/core/trace_test.cc" "tests/CMakeFiles/test_core.dir/core/trace_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pcon_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/pcon_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pcon_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pcon_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
