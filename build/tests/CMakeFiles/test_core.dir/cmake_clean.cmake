file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/actuator_test.cc.o"
  "CMakeFiles/test_core.dir/core/actuator_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/alignment_test.cc.o"
  "CMakeFiles/test_core.dir/core/alignment_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/anomaly_test.cc.o"
  "CMakeFiles/test_core.dir/core/anomaly_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/container_manager_test.cc.o"
  "CMakeFiles/test_core.dir/core/container_manager_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/energy_quota_test.cc.o"
  "CMakeFiles/test_core.dir/core/energy_quota_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/misc_test.cc.o"
  "CMakeFiles/test_core.dir/core/misc_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/model_store_test.cc.o"
  "CMakeFiles/test_core.dir/core/model_store_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/model_test.cc.o"
  "CMakeFiles/test_core.dir/core/model_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/policy_test.cc.o"
  "CMakeFiles/test_core.dir/core/policy_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/recalibration_test.cc.o"
  "CMakeFiles/test_core.dir/core/recalibration_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/trace_test.cc.o"
  "CMakeFiles/test_core.dir/core/trace_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
