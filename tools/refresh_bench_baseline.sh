#!/bin/sh
# Regenerate the committed benchmark baseline (bench/baseline/) that
# the CI bench-gate compares against. Run from the repository root
# after a Release build; commit the result together with the change
# that moved the numbers.
#
#   ./tools/refresh_bench_baseline.sh [--verify-clean] [build-dir]
#
# Uses the quick protocol (the one CI runs) so the committed files
# match what the gate measures. Only the deterministic "count"
# entries are gated — the wall-clock values recorded here are
# trajectory context, not a contract (see docs/BENCHMARKING.md).
#
# --verify-clean refuses to refresh unless `pcon_lint --strict`
# passes: a baseline blessed from a tree that violates the
# determinism/shard-isolation rules would canonicalize numbers the
# parallel engine cannot reproduce.
set -eu

VERIFY_CLEAN=0
if [ "${1:-}" = "--verify-clean" ]; then
    VERIFY_CLEAN=1
    shift
fi

BUILD_DIR=${1:-build}
OUT_DIR=bench/baseline

if [ "$VERIFY_CLEAN" = 1 ]; then
    if ! python3 tools/pcon_lint --root . --strict; then
        echo "refresh_bench_baseline: pcon-lint --strict failed;" \
             "fix findings (or stale suppressions) before blessing" \
             "a new baseline" >&2
        exit 3
    fi
fi

if [ ! -d "$BUILD_DIR/bench" ]; then
    echo "refresh_bench_baseline: no $BUILD_DIR/bench; build first" >&2
    exit 2
fi

mkdir -p "$OUT_DIR"
for suite in hotpath webwork_trace overhead_suite alignment; do
    PCON_BENCH_QUICK=1 PCON_BENCH_JSON_DIR="$OUT_DIR" \
        "./$BUILD_DIR/bench/bench_$suite"
done

echo "refresh_bench_baseline: wrote $(ls "$OUT_DIR" | wc -l) reports to $OUT_DIR"
