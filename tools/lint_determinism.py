#!/usr/bin/env python3
"""Determinism lint for the power-containers simulator (shim).

The checker now lives in the pcon-lint framework as the
``determinism`` rule (tools/pcon_lint/rules_determinism.py); this
entry point preserves the original CLI — and the ``lint_determinism``
/ ``lint_metric_names`` ctest names that invoke it — while delegating
the scanning to the shared engine.

Usage:
  tools/lint_determinism.py [--root REPO] [--metric-names-only] [DIR ...]

Exits 0 when clean, 1 with a findings report otherwise. Suppress a
deliberate, order-insensitive use with `// NOLINT-DETERMINISM(reason)`
on the offending line or the line directly above it (the framework's
`// pcon-lint: allow(determinism)` works too).
"""

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent / "pcon_lint")
)

from engine import Project, run_rules  # noqa: E402
from rules_determinism import CORE_SCOPE, DeterminismRule  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: the checkout containing this "
        "script)",
    )
    parser.add_argument(
        "--metric-names-only",
        action="store_true",
        help="only run the metric-name grammar check (used by the "
        "lint_metric_names ctest over a wider scope)",
    )
    parser.add_argument(
        "scope",
        nargs="*",
        default=list(CORE_SCOPE),
        help=f"directories to scan, relative to --root "
        f"(default: {' '.join(CORE_SCOPE)})",
    )
    args = parser.parse_args()

    rule = DeterminismRule(
        scope=args.scope, metric_names_only=args.metric_names_only
    )
    try:
        project = Project.load(args.root, args.scope)
    except FileNotFoundError as err:
        sys.stderr.write(f"lint_determinism: {err}\n")
        return 2

    findings, suppressions = run_rules(project, [rule])
    for s in suppressions:
        print(f"note: {s.path}:{s.line}: suppressed: {s.reason}")
    if findings:
        for f in findings:
            print(f"{f.path}:{f.line}: {f.message}")
        print(
            f"\nlint_determinism: {len(findings)} hazard(s) in "
            f"{len(project.files)} file(s). Route time through "
            f"sim::Simulation, randomness through sim::Rng, and "
            f"ordering through deterministic containers — or add "
            f"`// NOLINT-DETERMINISM(reason)` for provably "
            f"order-insensitive uses."
        )
        return 1
    print(
        f"lint_determinism: clean ({len(project.files)} files, "
        f"{len(suppressions)} suppression(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
