#!/usr/bin/env python3
"""Determinism lint for the power-containers simulator.

Simulation results must be bit-identical across runs and platforms:
the paper's conservation and alignment claims are validated by tests
that compare energy totals to tight tolerances, and future perf PRs
must be able to prove they changed performance, not physics. This
checker scans the deterministic core (src/sim, src/core, src/hw,
src/telemetry, and src/trace by default) for reproducibility
hazards:

  wall-clock       time(), clock(), gettimeofday(), std::chrono
                   system/steady/high_resolution clocks. Simulated
                   time must come from sim::Simulation::now().
  ambient-rng      std::random_device, rand()/srand()/random(),
                   drand48(), std::mt19937 & friends. All randomness
                   must flow through the seeded sim::Rng.
  unordered-iter   range-for over a std::unordered_{map,set} member
                   declared in the scanned tree. Hash-table iteration
                   order is implementation-defined; feeding it into
                   output or event ordering breaks reproducibility.
  ptr-keyed-order  std::{map,set} keyed by a raw pointer type, whose
                   iteration order depends on allocation addresses.
  metric-name      a telemetry registry counter()/gauge()/histogram()
                   registration whose string-literal name does not
                   match the metric grammar [a-z0-9_.]+. Names are
                   stable keys for dashboards and golden exports.

Suppress a deliberate, order-insensitive use by appending
`// NOLINT-DETERMINISM(reason)` on the offending line or the line
directly above it. The reason is mandatory.

Usage:
  tools/lint_determinism.py [--root REPO] [--metric-names-only] [DIR ...]

Exits 0 when clean, 1 with a findings report otherwise.
"""

import argparse
import pathlib
import re
import sys

DEFAULT_SCOPE = ["src/sim", "src/core", "src/hw", "src/telemetry",
                 "src/trace"]
SOURCE_SUFFIXES = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}

SUPPRESS_RE = re.compile(r"NOLINT-DETERMINISM\(([^)]+)\)")

# Hazard name -> (regex, explanation). Applied to source lines with
# comments and string/char literals blanked out.
PATTERN_HAZARDS = [
    (
        "wall-clock",
        re.compile(
            r"(?<![\w:.])(?:time|clock|gettimeofday|clock_gettime)\s*\("
        ),
        "wall-clock call; use sim::Simulation::now() instead",
    ),
    (
        "wall-clock",
        re.compile(
            r"std\s*::\s*chrono\s*::\s*"
            r"(?:system_clock|steady_clock|high_resolution_clock)"
        ),
        "host clock; simulated components must use sim time",
    ),
    (
        "ambient-rng",
        re.compile(r"std\s*::\s*random_device"),
        "non-deterministic entropy source; seed a sim::Rng instead",
    ),
    (
        "ambient-rng",
        re.compile(r"(?<![\w:.])(?:rand|srand|random|drand48|lrand48)\s*\("),
        "C library RNG with process-global state; use sim::Rng",
    ),
    (
        "ambient-rng",
        re.compile(
            r"std\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
            r"default_random_engine|ranlux\w+|knuth_b)"
        ),
        "standard-library engine; distributions differ across "
        "implementations, use sim::Rng",
    ),
    (
        "ptr-keyed-order",
        re.compile(r"std\s*::\s*(?:map|set)\s*<[^,>]*\*\s*[,>]"),
        "ordered container keyed by pointer value; iteration order "
        "depends on allocation addresses",
    ),
]

DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
    r"[^;{}()]*>(?:\s*&)?\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*:\s*\*?\s*([A-Za-z_]\w*)\s*\)")

# Registry registrations whose name is a string literal. Matched
# against the *blanked* line (so commented-out code never trips it);
# the literal itself is recovered from the raw line at the same
# offset.
METRIC_CALL_RE = re.compile(r"(?<![\w:])(?:counter|gauge|histogram)\s*\(")
METRIC_NAME_RE = re.compile(r"[a-z0-9_.]+")


def metric_name_findings(raw_line, blanked_line):
    """Metric-grammar violations on one line: every
    counter()/gauge()/histogram() call whose first argument is a
    string literal must name a metric matching [a-z0-9_.]+."""
    bad = []
    for match in METRIC_CALL_RE.finditer(blanked_line):
        at = match.end()
        while at < len(raw_line) and raw_line[at].isspace():
            at += 1
        if at >= len(raw_line) or raw_line[at] != '"':
            continue  # non-literal name: not statically checkable
        end = raw_line.find('"', at + 1)
        if end < 0:
            continue
        name = raw_line[at + 1 : end]
        if not METRIC_NAME_RE.fullmatch(name):
            bad.append(
                (
                    "metric-name",
                    f"metric name '{name}' violates the grammar "
                    f"[a-z0-9_.]+",
                )
            )
    return bad


def blank_comments_and_strings(text: str) -> str:
    """Replace comment and literal bodies with spaces, preserving
    line structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated; recover
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def collect_files(root: pathlib.Path, scope):
    files = []
    for rel in scope:
        base = root / rel
        if not base.exists():
            sys.stderr.write(f"lint_determinism: no such directory: {base}\n")
            sys.exit(2)
        files.extend(
            p
            for p in sorted(base.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES and p.is_file()
        )
    return files


def collect_unordered_members(blanked_by_file):
    """Names of members/locals declared as std::unordered_* anywhere
    in the scanned tree (headers declare, .cc files iterate)."""
    names = set()
    for blanked in blanked_by_file.values():
        for match in DECL_RE.finditer(blanked):
            names.add(match.group(1))
    return names


def suppressed(raw_lines, idx):
    """A NOLINT-DETERMINISM(reason) on this or the preceding line."""
    here = SUPPRESS_RE.search(raw_lines[idx])
    if here:
        return here.group(1).strip()
    if idx > 0:
        above = SUPPRESS_RE.search(raw_lines[idx - 1])
        if above:
            return above.group(1).strip()
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: the checkout containing this "
        "script)",
    )
    parser.add_argument(
        "--metric-names-only",
        action="store_true",
        help="only run the metric-name grammar check (used by the "
        "lint_metric_names ctest over a wider scope)",
    )
    parser.add_argument(
        "scope",
        nargs="*",
        default=DEFAULT_SCOPE,
        help=f"directories to scan, relative to --root "
        f"(default: {' '.join(DEFAULT_SCOPE)})",
    )
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    files = collect_files(root, args.scope)
    blanked_by_file = {
        path: blank_comments_and_strings(
            path.read_text(encoding="utf-8", errors="replace")
        )
        for path in files
    }
    unordered_names = collect_unordered_members(blanked_by_file)

    findings = []
    suppressions = []
    for path in files:
        raw_lines = path.read_text(
            encoding="utf-8", errors="replace"
        ).splitlines()
        blanked_lines = blanked_by_file[path].splitlines()
        rel = path.relative_to(root)
        for idx, line in enumerate(blanked_lines):
            hits = []
            if not args.metric_names_only:
                for name, regex, why in PATTERN_HAZARDS:
                    if regex.search(line):
                        hits.append((name, why))
                for match in RANGE_FOR_RE.finditer(line):
                    if match.group(1) in unordered_names:
                        hits.append(
                            (
                                "unordered-iter",
                                f"range-for over unordered container "
                                f"'{match.group(1)}'; hash order is "
                                f"not reproducible",
                            )
                        )
            if idx < len(raw_lines):
                hits.extend(metric_name_findings(raw_lines[idx], line))
            for name, why in hits:
                reason = suppressed(raw_lines, idx)
                if reason:
                    suppressions.append(
                        (rel, idx + 1, name, reason)
                    )
                else:
                    findings.append((rel, idx + 1, name, why))

    for rel, lineno, name, reason in suppressions:
        print(
            f"note: {rel}:{lineno}: suppressed [{name}]: {reason}"
        )
    if findings:
        for rel, lineno, name, why in findings:
            print(f"{rel}:{lineno}: [{name}] {why}")
        print(
            f"\nlint_determinism: {len(findings)} hazard(s) in "
            f"{len(files)} file(s). Route time through "
            f"sim::Simulation, randomness through sim::Rng, and "
            f"ordering through deterministic containers — or add "
            f"`// NOLINT-DETERMINISM(reason)` for provably "
            f"order-insensitive uses."
        )
        return 1
    print(
        f"lint_determinism: clean ({len(files)} files, "
        f"{len(suppressions)} suppression(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
