/**
 * @file
 * Span-dump analysis CLI: reads a renderSpanJson() dump (see
 * docs/TRACING.md) and prints the trace report — top-N requests by
 * energy, per-stage breakdowns, critical paths, and the
 * cross-machine imbalance table.
 *
 *   trace_report spans.json [--top N] [--request ID] [--json]
 *
 * With --request only that request's breakdown and critical path are
 * printed. --json emits the same report as one machine-readable
 * pcon-trace-report-v1 document (reportJson) instead of text. Exit codes: 0 ok, 2 usage error; parse/IO failures abort
 * with a diagnostic (util::fatal).
 *
 * The CLI is a thin wrapper over obs::EnergyIndex (docs/QUERIES.md):
 * it attaches an index to the reloaded collector and renders the
 * obs/report.h views. Attaching absorbs spans in id order, so the
 * output is byte-identical to the historical collector-scanning
 * report (pinned by tests/data/golden_trace_report.*).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/report.h"
#include "trace/span_json.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <spans.json> [--top N] [--request ID] [--json]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::size_t top_n = 5;
    bool json = false;
    pcon::os::RequestId request = pcon::os::NoRequest;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--top") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            top_n = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--request") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            request = static_cast<pcon::os::RequestId>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (argv[i][0] == '-' || !path.empty()) {
            return usage(argv[0]);
        } else {
            path = argv[i];
        }
    }
    if (path.empty())
        return usage(argv[0]);

    pcon::trace::SpanCollector spans =
        pcon::trace::loadSpanJson(path);
    pcon::obs::EnergyIndex index;
    index.attach(spans);
    if (request != pcon::os::NoRequest && !json) {
        std::fputs(
            pcon::obs::reportStageBreakdown(index, request).c_str(),
            stdout);
        std::fputs("\n", stdout);
        std::fputs(
            pcon::obs::reportCriticalPath(index, request).c_str(),
            stdout);
        return 0;
    }
    pcon::obs::ReportOptions opts;
    opts.topN = top_n;
    if (json) {
        std::fputs(pcon::obs::reportJson(index, opts).c_str(),
                   stdout);
        std::fputs("\n", stdout);
        return 0;
    }
    std::fputs(pcon::obs::fullReport(index, opts).c_str(), stdout);
    return 0;
}
