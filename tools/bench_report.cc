/**
 * @file
 * Benchmark trajectory CLI: compares pcon-bench-v1 BENCH_*.json
 * documents (see docs/BENCHMARKING.md) and gates on regressions.
 *
 *   bench_report <base.json> <current.json> [options]
 *   bench_report <base_dir> <current_dir>   [options]
 *   bench_report <dir>                      [options]
 *
 * Two files: compare current against base entry by entry. Two
 * directories: match every BENCH_*.json by filename and compare each
 * pair. One directory: trajectory mode — list every BENCH_*.json in
 * sorted order with its provenance and per-entry medians.
 *
 * Options:
 *   --check          exit 1 when any gated entry regresses by more
 *                    than the threshold. Only deterministic "count"
 *                    entries gate by default; wall-clock entries are
 *                    informational (noted on stderr, never fatal)
 *                    because their run-to-run spread on shared
 *                    machines dwarfs any useful threshold.
 *   --gate-wall      also gate wall-clock entries (dedicated quiet
 *                    machines only)
 *   --threshold N    regression gate percentage (default 5)
 *   --json           machine-readable output instead of the table
 *
 * Exit codes: 0 ok, 1 regression over threshold (with --check),
 * 2 usage or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

#include "perf/bench_compare.h"
#include "perf/bench_schema.h"

namespace {

using pcon::perf::BenchParseResult;
using pcon::perf::BenchReport;
using pcon::perf::Comparison;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <base.json> <current.json> [--check] "
        "[--gate-wall] [--threshold N] [--json]\n"
        "       %s <base_dir> <current_dir>   [--check] "
        "[--gate-wall] [--threshold N] [--json]\n"
        "       %s <dir>                      [--json]\n",
        argv0, argv0, argv0);
    return 2;
}

bool
isDirectory(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
exists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** BENCH_*.json filenames in `dir`, sorted. */
std::vector<std::string>
benchFiles(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return out;
    while (dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
            name.size() >= 11 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            out.push_back(name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

/** Load one report; on failure print the error and return false. */
bool
load(const std::string &path, BenchReport &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_report: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    BenchParseResult parsed = pcon::perf::tryParseBenchJson(text);
    if (!parsed.ok) {
        std::fprintf(stderr, "bench_report: %s: %s\n", path.c_str(),
                     parsed.error.c_str());
        return false;
    }
    out = parsed.report;
    return true;
}

struct Options
{
    bool check = false;
    bool gateWall = false;
    bool json = false;
    double thresholdPct = 5.0;
};

/**
 * Render one comparison and fold its gate verdict into `failed`.
 */
void
emit(const Comparison &cmp, const Options &opts, bool first,
     bool &failed)
{
    if (opts.json) {
        if (!first)
            std::printf("\n");
        std::printf("%s\n",
                    pcon::perf::renderComparisonJson(cmp).c_str());
    } else {
        std::printf(
            "%s",
            pcon::perf::renderComparisonTable(cmp).c_str());
    }
    if (opts.check) {
        std::vector<pcon::perf::EntryDelta> over =
            cmp.regressionsOver(opts.thresholdPct, opts.gateWall);
        for (const pcon::perf::EntryDelta &d : over) {
            std::fprintf(stderr,
                         "bench_report: REGRESSION %s/%s %+.2f%% "
                         "(threshold %.2f%%)\n",
                         cmp.topic.c_str(), d.name.c_str(),
                         d.regressionPct, opts.thresholdPct);
            failed = true;
        }
        if (!opts.gateWall) {
            // Wall-clock deltas over the threshold are host noise
            // until proven otherwise: note them, don't gate.
            for (const pcon::perf::EntryDelta &d :
                 cmp.regressionsOver(opts.thresholdPct, true)) {
                if (d.deterministic())
                    continue;
                std::fprintf(
                    stderr,
                    "bench_report: note: wall-clock delta %s/%s "
                    "%+.2f%% (informational; --gate-wall to gate)\n",
                    cmp.topic.c_str(), d.name.c_str(),
                    d.regressionPct);
            }
        }
    }
}

/**
 * Summarize a directory of reports (no comparison). With --check the
 * listing doubles as a health gate: an empty directory, an
 * unparsable document, or a report with zero entries exits 1 — so CI
 * catches a bench suite that silently stopped emitting before a
 * two-directory comparison would mask it as "nothing to compare".
 */
int
trajectory(const std::string &dir, const Options &opts)
{
    std::vector<std::string> files = benchFiles(dir);
    if (files.empty()) {
        std::fprintf(stderr,
                     "bench_report: no BENCH_*.json under %s\n"
                     "  (run the bench_* suites with "
                     "PCON_BENCH_JSON_DIR=%s to generate them)\n",
                     dir.c_str(), dir.c_str());
        // Plain listings treat this as an I/O-level error; --check
        // treats it as the gate tripping.
        return opts.check ? 1 : 2;
    }
    bool failed = false;
    bool first = true;
    for (const std::string &name : files) {
        BenchReport report;
        if (!load(dir + "/" + name, report)) {
            if (!opts.check)
                return 2;
            failed = true;
            continue;
        }
        if (opts.check && report.entries.empty()) {
            std::fprintf(stderr,
                         "bench_report: CHECK %s: report has no "
                         "entries\n",
                         name.c_str());
            failed = true;
        }
        if (opts.json) {
            if (!first)
                std::printf("\n");
            std::printf(
                "%s\n",
                pcon::perf::renderBenchJson(report).c_str());
        } else {
            std::printf("%s  topic %-18s %s %s%s  %zu entries\n",
                        name.c_str(), report.topic.c_str(),
                        report.gitSha.c_str(),
                        report.buildFlavor.c_str(),
                        report.quick ? " (quick)" : "",
                        report.entries.size());
            for (const pcon::perf::BenchEntry &e : report.entries)
                std::printf("  %-36s median %14.2f %s\n",
                            e.name.c_str(), e.medianValue,
                            e.unit.c_str());
        }
        first = false;
    }
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    Options opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            opts.check = true;
        } else if (std::strcmp(argv[i], "--gate-wall") == 0) {
            opts.gateWall = true;
        } else if (std::strcmp(argv[i], "--threshold") == 0) {
            if (i + 1 >= argc)
                return usage(argv[0]);
            opts.thresholdPct = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opts.json = true;
        } else if (argv[i][0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.empty() || paths.size() > 2)
        return usage(argv[0]);
    for (const std::string &p : paths)
        if (!exists(p)) {
            std::fprintf(stderr, "bench_report: no such path %s\n",
                         p.c_str());
            return 2;
        }

    if (paths.size() == 1) {
        if (!isDirectory(paths[0]))
            return usage(argv[0]);
        return trajectory(paths[0], opts);
    }

    bool failed = false;
    if (isDirectory(paths[0]) != isDirectory(paths[1]))
        return usage(argv[0]);
    if (!isDirectory(paths[0])) {
        BenchReport base, current;
        if (!load(paths[0], base) || !load(paths[1], current))
            return 2;
        emit(pcon::perf::compareBenchReports(base, current), opts,
             true, failed);
    } else {
        std::vector<std::string> base_files = benchFiles(paths[0]);
        std::vector<std::string> current_files =
            benchFiles(paths[1]);
        bool first = true;
        std::size_t matched = 0;
        for (const std::string &name : base_files) {
            if (std::find(current_files.begin(),
                          current_files.end(),
                          name) == current_files.end()) {
                std::fprintf(stderr,
                             "bench_report: %s only in %s\n",
                             name.c_str(), paths[0].c_str());
                continue;
            }
            BenchReport base, current;
            if (!load(paths[0] + "/" + name, base) ||
                !load(paths[1] + "/" + name, current))
                return 2;
            emit(pcon::perf::compareBenchReports(base, current),
                 opts, first, failed);
            first = false;
            ++matched;
        }
        for (const std::string &name : current_files)
            if (std::find(base_files.begin(), base_files.end(),
                          name) == base_files.end())
                std::fprintf(stderr,
                             "bench_report: %s only in %s\n",
                             name.c_str(), paths[1].c_str());
        if (matched == 0) {
            std::fprintf(stderr,
                         "bench_report: no matching BENCH_*.json "
                         "pairs\n");
            return 2;
        }
    }
    return failed ? 1 : 0;
}
