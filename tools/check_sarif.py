#!/usr/bin/env python3
"""Structural validator for pcon-lint's SARIF 2.1.0 output.

Usage:
  python3 tools/check_sarif.py FILE.sarif
  python3 tools/check_sarif.py --from-lint ROOT [--strict]

The first form validates an existing SARIF file. The second runs
pcon-lint in-process against ROOT with ``--sarif`` pointed at a
temporary file, then validates what it wrote — the ctest leg
``pcon_lint_sarif_schema`` uses this so the checked document is the
one CI would upload, not a canned sample.

This intentionally implements the SARIF 2.1.0 *structural* subset
the GitHub code-scanning ingester requires (the container must not
depend on a JSON-Schema package): version string, runs array,
tool.driver with name and well-formed rule descriptors, and for
every result a known ruleId, an in-range ruleIndex, a message.text,
locations with artifactLocation.uri + a positive integer startLine,
a valid level, and well-formed suppression objects. Exits 0 when the
document conforms, 1 with a list of violations.
"""

import argparse
import json
import pathlib
import sys

VALID_LEVELS = {"none", "note", "warning", "error"}
VALID_SUPPRESSION_KINDS = {"inSource", "external"}


def validate(doc):
    """Return a list of violation strings (empty: conforms)."""
    errs = []

    def need(cond, msg):
        if not cond:
            errs.append(msg)
        return cond

    if not need(isinstance(doc, dict), "document is not an object"):
        return errs
    need(
        doc.get("version") == "2.1.0",
        f"version must be '2.1.0', got {doc.get('version')!r}",
    )
    runs = doc.get("runs")
    if not need(
        isinstance(runs, list) and runs, "runs must be a non-empty array"
    ):
        return errs
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not need(isinstance(run, dict), f"{where} is not an object"):
            continue
        driver = run.get("tool", {}).get("driver")
        if not need(
            isinstance(driver, dict), f"{where}.tool.driver missing"
        ):
            continue
        need(
            isinstance(driver.get("name"), str) and driver["name"],
            f"{where}.tool.driver.name must be a non-empty string",
        )
        rules = driver.get("rules", [])
        need(
            isinstance(rules, list),
            f"{where}.tool.driver.rules must be an array",
        )
        rule_ids = []
        for qi, rule in enumerate(rules):
            rwhere = f"{where}.tool.driver.rules[{qi}]"
            if not need(
                isinstance(rule, dict) and isinstance(
                    rule.get("id"), str
                ),
                f"{rwhere}.id must be a string",
            ):
                continue
            rule_ids.append(rule["id"])
            short = rule.get("shortDescription")
            if short is not None:
                need(
                    isinstance(short, dict)
                    and isinstance(short.get("text"), str),
                    f"{rwhere}.shortDescription.text must be a "
                    f"string",
                )
        need(
            len(rule_ids) == len(set(rule_ids)),
            f"{where}: duplicate rule ids",
        )
        results = run.get("results", [])
        if not need(
            isinstance(results, list),
            f"{where}.results must be an array",
        ):
            continue
        for si, result in enumerate(results):
            swhere = f"{where}.results[{si}]"
            if not need(
                isinstance(result, dict), f"{swhere} not an object"
            ):
                continue
            rid = result.get("ruleId")
            need(
                isinstance(rid, str) and rid in rule_ids,
                f"{swhere}.ruleId {rid!r} not declared in "
                f"tool.driver.rules",
            )
            idx = result.get("ruleIndex")
            if idx is not None:
                need(
                    isinstance(idx, int)
                    and 0 <= idx < len(rule_ids)
                    and rule_ids[idx] == rid,
                    f"{swhere}.ruleIndex {idx!r} does not point at "
                    f"ruleId {rid!r}",
                )
            need(
                isinstance(
                    result.get("message", {}).get("text"), str
                ),
                f"{swhere}.message.text must be a string",
            )
            level = result.get("level")
            if level is not None:
                need(
                    level in VALID_LEVELS,
                    f"{swhere}.level {level!r} invalid",
                )
            locations = result.get("locations", [])
            need(
                isinstance(locations, list) and locations,
                f"{swhere}.locations must be a non-empty array",
            )
            for li, loc in enumerate(locations or []):
                lwhere = f"{swhere}.locations[{li}]"
                phys = loc.get("physicalLocation", {})
                art = phys.get("artifactLocation", {})
                need(
                    isinstance(art.get("uri"), str) and art["uri"],
                    f"{lwhere}: artifactLocation.uri missing",
                )
                need(
                    "\\" not in art.get("uri", ""),
                    f"{lwhere}: uri must use forward slashes",
                )
                region = phys.get("region", {})
                start = region.get("startLine")
                need(
                    isinstance(start, int) and start >= 1,
                    f"{lwhere}: region.startLine must be a "
                    f"positive integer, got {start!r}",
                )
            for pi, sup in enumerate(result.get("suppressions", [])):
                need(
                    isinstance(sup, dict)
                    and sup.get("kind") in VALID_SUPPRESSION_KINDS,
                    f"{swhere}.suppressions[{pi}].kind invalid",
                )
    return errs


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "sarif_file", nargs="?", help="SARIF file to validate"
    )
    parser.add_argument(
        "--from-lint",
        metavar="ROOT",
        help="run pcon-lint against ROOT and validate its --sarif "
        "output instead of reading a file",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="with --from-lint: pass --strict to pcon-lint (stale "
        "suppressions become SARIF results too)",
    )
    args = parser.parse_args(argv)

    if bool(args.sarif_file) == bool(args.from_lint):
        parser.error("give exactly one of FILE or --from-lint ROOT")

    if args.from_lint:
        import subprocess
        import tempfile

        lint_pkg = pathlib.Path(__file__).resolve().parent / "pcon_lint"
        with tempfile.NamedTemporaryFile(
            suffix=".sarif", delete=False
        ) as fh:
            out = fh.name
        try:
            cmd = [
                sys.executable,
                str(lint_pkg),
                "--root",
                args.from_lint,
                "--sarif",
                out,
            ]
            if args.strict:
                cmd.append("--strict")
            proc = subprocess.run(cmd)
            sys.stderr.write(
                f"check_sarif: pcon-lint exited {proc.returncode}; "
                f"validating its SARIF output\n"
            )
            doc = json.loads(pathlib.Path(out).read_text())
        finally:
            pathlib.Path(out).unlink(missing_ok=True)
    else:
        doc = json.loads(
            pathlib.Path(args.sarif_file).read_text(encoding="utf-8")
        )

    errs = validate(doc)
    if errs:
        for e in errs:
            sys.stderr.write(f"check_sarif: {e}\n")
        sys.stderr.write(
            f"check_sarif: {len(errs)} violation(s) of the SARIF "
            f"2.1.0 structural subset\n"
        )
        return 1
    runs = doc["runs"]
    n = sum(len(r.get("results", [])) for r in runs)
    sys.stderr.write(
        f"check_sarif: OK ({len(runs)} run(s), {n} result(s))\n"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
