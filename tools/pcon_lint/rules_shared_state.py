"""Shared-state rule: no undeclared mutable globals.

Namespace-scope variables and function-local ``static`` variables are
process-wide shared state: once shards run in parallel (ROADMAP Open
item 1), every one of them is a data race waiting for the thread that
writes it. This rule requires each such variable in ``src/`` to be

  * ``const`` / ``constexpr`` / ``constinit const`` (immutable), or
  * ``PCON_GUARDED_BY(<mutex>)`` — Clang's thread-safety analysis
    then owns it, exactly as for guarded class members, or
  * explicitly acknowledged with a *justified* suppression::

        // pcon-lint: allow(shared-state) guarded by gLogMutex

    The justification text after the ``allow(...)`` is mandatory —
    a bare allow() does not suppress, because the whole point is to
    record *why* this global is safe to share.

``thread_local`` variables are exempt (not shared between shards).
Class members are the guarded-members rule's job, not this one's.
"""

import re

from cpp_scan import scan_statements
from engine import ALLOW_RE, Finding, Rule
from rules_guarded_members import GUARDED_RE

#: Statement heads that can never be a variable definition.
NON_VARIABLE_HEADS = {
    "using", "typedef", "template", "static_assert", "friend",
    "extern", "return", "delete", "goto", "case", "default", "break",
    "continue", "throw", "if", "else", "for", "while", "do",
    "switch", "public", "private", "protected", "namespace", "class",
    "struct", "union", "enum", "operator", "co_return", "co_yield",
}

#: 'Type name;' / 'Type name = init;' / 'Type name{init};' — a
#: declaration with no parameter list. 'Type name(args);' is skipped
#: (ambiguous with function declarations) which is fine: this
#: codebase brace-initializes.
VARIABLE_RE = re.compile(
    r"^(?:(?:static|inline|mutable|constinit)\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<[^;]*>)?[\s*&]+"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{.*\})?$"
)

QUALIFIER_RE = re.compile(r"^(?:static|inline|constinit)\s+")


def is_immutable(text):
    """const/constexpr anywhere in the declarator head."""
    return bool(re.search(r"\b(?:const|constexpr)\b", text))


def variable_name(text):
    """Declared name if the statement defines a variable, else None."""
    head = re.match(r"[A-Za-z_]\w*", text)
    if head and head.group(0) in NON_VARIABLE_HEADS:
        return None
    if re.search(r"\bthread_local\b", text):
        return None
    m = VARIABLE_RE.match(text)
    return m.group(1) if m else None


class SharedStateRule(Rule):
    name = "shared-state"
    description = (
        "mutable namespace-scope / static-local state in src/ must "
        "be const or carry a justified allow(shared-state) comment"
    )
    scope = ("src",)

    def run(self, project):
        findings = []
        for source in project.files_under(self.scope):
            for stmt in scan_statements(source.blanked):
                if stmt.scope == "namespace":
                    text = stmt.text
                elif stmt.scope == "block":
                    if not re.match(r"static\b", stmt.text):
                        continue
                    text = stmt.text
                else:
                    continue  # class members: guarded-members rule
                if GUARDED_RE.search(text):
                    continue  # thread-safety analysis owns it
                if is_immutable(text):
                    continue
                name = variable_name(text)
                if name is None:
                    continue
                where = (
                    "namespace-scope variable"
                    if stmt.scope == "namespace"
                    else "function-local static"
                )
                findings.append(
                    Finding(
                        self.name,
                        source.rel,
                        stmt.line,
                        f"mutable {where} '{name}' is cross-shard "
                        f"shared state; make it const, or add "
                        f"'// pcon-lint: allow(shared-state) "
                        f"<why it is safe>'",
                    )
                )
        return findings

    def suppression_at(self, source, idx):
        """allow(shared-state) only counts with a justification."""
        hit = super().suppression_at(source, idx)
        if hit is None:
            return None
        _, marker = hit
        line = source.raw_lines[marker]
        m = ALLOW_RE.search(line)
        tail = line[m.end():].strip() if m else ""
        if not tail:
            return None  # bare allow(): rejected, finding stands
        return f"allow(shared-state): {tail}", marker

    def selftest(self):
        errors = []
        rule = SharedStateRule()
        project = rule.project_from_texts(
            {
                "src/util/globals.cc": (
                    "namespace pcon {\n"
                    "namespace {\n"
                    "int gBad = 0;\n"
                    "const int kFine = 1;\n"
                    "constexpr double kAlso = 2.0;\n"
                    "// pcon-lint: allow(shared-state) guarded by "
                    "gMu, see logging.cc\n"
                    "LogCounts gCounts;\n"
                    "// pcon-lint: allow(shared-state)\n"
                    "int gBareAllow = 0;\n"
                    "Level gGuarded PCON_GUARDED_BY(gMu) = kWarn;\n"
                    "}\n"
                    "int counter() {\n"
                    "    static int gCalls = 0;\n"
                    "    static const int kCap = 10;\n"
                    "    thread_local int scratch = 0;\n"
                    "    int local = 0;\n"
                    "    return gCalls + kCap + scratch + local;\n"
                    "}\n"
                    "} // namespace pcon\n"
                ),
            }
        )
        from engine import run_rules_with_stale

        kept, suppressed, stale = run_rules_with_stale(
            project, [rule]
        )
        got = sorted((f.path, f.line) for f in kept)
        want = [
            ("src/util/globals.cc", 3),   # gBad
            ("src/util/globals.cc", 9),   # gBareAllow: no reason
            ("src/util/globals.cc", 13),  # static gCalls
        ]
        if got != want:
            errors.append(
                f"shared-state selftest: expected findings at "
                f"{want}, got {[f.render() for f in kept]}"
            )
        if len(suppressed) != 1 or "gMu" not in suppressed[0].reason:
            errors.append(
                f"shared-state selftest: justified allow() did not "
                f"suppress gCounts: "
                f"{[s.render() for s in suppressed]}"
            )
        # The bare allow() is unused, so it must surface as stale —
        # the author learns the comment is ineffective, not honored.
        if [(s.path, s.line) for s in stale] != [
            ("src/util/globals.cc", 8)
        ]:
            errors.append(
                f"shared-state selftest: bare allow() should be "
                f"reported stale, got {[s.render() for s in stale]}"
            )
        return errors
