"""Guarded-members rule: shared types must annotate every member.

``shared_types.toml`` names the types that cross shard boundaries
(the registry, the span collector, the event queue, ...). For each
one, every mutable data member must either

  * carry ``PCON_GUARDED_BY(<mutex>)`` / ``PCON_PT_GUARDED_BY``, so
    Clang's thread-safety analysis enforces its lock, or
  * be explicitly marked ``// pcon-lint: shard-local(<reason>)`` on
    its line or the line above — an auditable claim that no
    cross-shard access exists (e.g. wiring-phase state written only
    while the harness is single-threaded).

``util::Mutex`` / ``util::SharedMutex`` / ``util::SpinLock`` /
``util::Atomic`` members
and ``const`` / ``constexpr`` members are safe by construction and
exempt. A type listed in the TOML that cannot be found in its
declared header is itself an error: the work list must not rot.
"""

import pathlib
import re
import tomllib

from cpp_scan import enclosing_class, scan_statements
from engine import Finding, Rule

DEFAULT_SHARED_TYPES = (
    pathlib.Path(__file__).resolve().parent / "shared_types.toml"
)

GUARDED_RE = re.compile(r"\bPCON(?:_PT)?_GUARDED_BY\s*\([^)]*\)")
SHARD_LOCAL_RE = re.compile(r"pcon-lint:\s*shard-local\(([^)]+)\)")
ACCESS_LABEL_RE = re.compile(
    r"^(?:(?:public|private|protected)\s*:\s*)+"
)
SAFE_TYPE_RE = re.compile(r"\b(?:Mutex|SharedMutex|SpinLock|Atomic)\b")
MEMBER_NAME_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{.*\})?$"
)
NON_MEMBER_HEADS = {
    "using", "typedef", "friend", "template", "static_assert",
    "enum", "class", "struct", "union", "operator", "explicit",
    "virtual", "return",
}


def load_shared_types(path):
    """Parse shared_types.toml → ({name: header}, {name: line})."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    doc = tomllib.loads(text)
    types = doc.get("types", {})
    if not isinstance(types, dict) or not types:
        raise ValueError(
            f"{path}: expected a non-empty [types] table mapping "
            f"type names to their defining headers"
        )
    lines = {}
    for idx, line in enumerate(text.splitlines()):
        m = re.match(r"\s*([A-Za-z_]\w*)\s*=", line)
        if m and m.group(1) in types:
            lines.setdefault(m.group(1), idx + 1)
    return types, lines


def member_name(text):
    """Declared member name if the statement is a data member."""
    text = ACCESS_LABEL_RE.sub("", text).strip()
    head = re.match(r"[A-Za-z_]\w*", text)
    if not head or head.group(0) in NON_MEMBER_HEADS:
        return None
    stripped = GUARDED_RE.sub("", text).strip()
    if "(" in stripped:
        return None  # function declaration (or paren-init: skipped)
    if re.search(r"\b(?:const|constexpr)\b", stripped):
        return None  # immutable member
    if SAFE_TYPE_RE.search(stripped):
        return None  # annotated wrapper type, safe by construction
    m = MEMBER_NAME_RE.search(stripped)
    if not m or " " not in stripped:
        return None  # no 'Type name' shape
    return m.group(1)


class GuardedMembersRule(Rule):
    name = "guarded-members"
    description = (
        "every mutable member of a type in shared_types.toml must be "
        "PCON_GUARDED_BY(...) or marked shard-local(<reason>)"
    )
    scope = ("src",)

    def __init__(self, shared_types_path=None, shared_types=None):
        self.shared_types_path = str(
            shared_types_path or DEFAULT_SHARED_TYPES
        )
        self._inline_types = shared_types  # selftests inject a dict

    def _load(self):
        if self._inline_types is not None:
            return dict(self._inline_types), {}
        return load_shared_types(self.shared_types_path)

    def _toml_rel(self, project):
        p = pathlib.Path(self.shared_types_path).resolve()
        try:
            return p.relative_to(project.root.resolve()).as_posix()
        except ValueError:
            return p.as_posix()

    def _shard_local_reason(self, source, stmt):
        """shard-local(reason) on the statement's first line or the
        line directly above it (same placement as allow())."""
        first = stmt.line - 1
        for idx in (first - 1, first):
            if 0 <= idx < len(source.raw_lines):
                m = SHARD_LOCAL_RE.search(source.raw_lines[idx])
                if m and m.group(1).strip():
                    return m.group(1).strip()
        return None

    def run(self, project):
        try:
            types, toml_lines = self._load()
        except (OSError, ValueError, tomllib.TOMLDecodeError) as err:
            return [
                Finding(
                    self.name,
                    self._toml_rel(project),
                    1,
                    f"cannot load shared-types list: {err}",
                )
            ]
        findings = []
        by_rel = {f.rel: f for f in project.files}
        found_types = set()
        for source in project.files:
            wanted = {
                t for t, header in types.items()
                if header == source.rel
            }
            if not wanted:
                continue
            for stmt in scan_statements(source.blanked):
                if stmt.scope != "class":
                    continue
                cls = enclosing_class(stmt)
                if cls not in wanted:
                    continue
                found_types.add(cls)
                if GUARDED_RE.search(stmt.text):
                    continue  # annotated: the analysis owns it now
                name = member_name(stmt.text)
                if name is None:
                    continue
                if self._shard_local_reason(source, stmt):
                    continue
                findings.append(
                    Finding(
                        self.name,
                        source.rel,
                        stmt.line,
                        f"mutable member '{name}' of shared type "
                        f"'{cls}' is neither PCON_GUARDED_BY(...) "
                        f"nor marked '// pcon-lint: "
                        f"shard-local(<reason>)'",
                    )
                )
        for t in sorted(set(types) - found_types):
            header = types[t]
            why = (
                f"not a scanned file"
                if header not in by_rel
                else f"no class/struct '{t}' with members found there"
            )
            findings.append(
                Finding(
                    self.name,
                    self._toml_rel(project),
                    toml_lines.get(t, 1),
                    f"shared type '{t}' not found in its declared "
                    f"header '{header}' ({why}); fix or remove the "
                    f"entry — the work list must not rot",
                )
            )
        return findings

    def selftest(self):
        errors = []
        header = (
            "namespace pcon {\n"
            "class Store {\n"
            "  public:\n"
            "    void put(int v);\n"
            "    int get() const { return cache_; }\n"
            "  private:\n"
            "    mutable util::Mutex mu_;\n"
            "    std::vector<int> items_ PCON_GUARDED_BY(mu_);\n"
            "    int cache_ = 0;\n"
            "    util::Atomic<int> hits_;\n"
            "    static constexpr int kMax = 8;\n"
            "    // pcon-lint: shard-local(wiring-phase only)\n"
            "    Config *config_ = nullptr;\n"
            "};\n"
            "class Unlisted { int free_ = 0; };\n"
            "} // namespace pcon\n"
        )
        rule = GuardedMembersRule(
            shared_types={"Store": "src/core/store.h"}
        )
        project = rule.project_from_texts(
            {"src/core/store.h": header}
        )
        from engine import run_rules_with_stale

        kept, _, _ = run_rules_with_stale(project, [rule])
        got = sorted((f.path, f.line) for f in kept)
        if got != [("src/core/store.h", 9)]:  # cache_ only
            errors.append(
                f"guarded-members selftest: expected exactly the "
                f"unguarded 'cache_' member at store.h:9, got "
                f"{[f.render() for f in kept]}"
            )

        # Suppression: the framework-wide allow() comment works too.
        suppressed_header = header.replace(
            "    int cache_ = 0;\n",
            "    // pcon-lint: allow(guarded-members)\n"
            "    int cache_ = 0;\n",
        )
        project = rule.project_from_texts(
            {"src/core/store.h": suppressed_header}
        )
        kept, suppressed, _ = run_rules_with_stale(project, [rule])
        if kept or len(suppressed) != 1:
            errors.append(
                f"guarded-members selftest: allow() comment did not "
                f"suppress cache_: kept="
                f"{[f.render() for f in kept]}"
            )

        # Unknown type: a listed name missing from its header must
        # itself be reported so the TOML cannot rot.
        rule = GuardedMembersRule(
            shared_types={"Ghost": "src/core/store.h"}
        )
        project = rule.project_from_texts(
            {"src/core/store.h": header}
        )
        kept, _, _ = run_rules_with_stale(project, [rule])
        if len(kept) != 1 or "Ghost" not in kept[0].message:
            errors.append(
                f"guarded-members selftest: missing unknown-type "
                f"error, got {[f.render() for f in kept]}"
            )
        return errors
