"""SARIF 2.1.0 output for pcon-lint.

Emits one run per invocation: the rule catalogue as
``tool.driver.rules``, every live finding as an ``error``-level
result, every suppressed finding as a result carrying an
``inSource`` suppression (so code-scanning UIs show the audit trail
instead of hiding it), and — under ``--strict`` — stale suppressions
as ``warning``-level results under a synthetic ``stale-suppression``
rule. URIs are repo-relative with a ``SRCROOT`` base id, which is
what GitHub code scanning expects for checkout-relative paths.

Kept intentionally free of third-party dependencies; the structural
validator in tools/check_sarif.py pins the subset of the 2.1.0
schema this writer must satisfy.
"""

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

STALE_RULE = {
    "id": "stale-suppression",
    "shortDescription": {
        "text": (
            "a suppression marker that no longer silences any "
            "finding (or names no known rule) must be deleted"
        )
    },
}


def _result(rule_index, rule_id, path, line, text, level):
    return {
        "ruleId": rule_id,
        "ruleIndex": rule_index,
        "level": level,
        "message": {"text": text},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, line)},
                }
            }
        ],
    }


def sarif_document(rules, project, findings, suppressions, stale,
                   strict):
    driver_rules = [
        {
            "id": r.name,
            "shortDescription": {
                "text": r.description or r.name
            },
        }
        for r in rules
    ]
    driver_rules.append(STALE_RULE)
    index = {r.name: i for i, r in enumerate(rules)}
    stale_index = len(driver_rules) - 1

    results = []
    for f in findings:
        results.append(
            _result(
                index.get(f.rule, stale_index),
                f.rule,
                f.path,
                f.line,
                f.message,
                "error",
            )
        )
    for s in suppressions:
        entry = _result(
            index.get(s.rule, stale_index),
            s.rule,
            s.path,
            s.line,
            f"suppressed: {s.reason}",
            "note",
        )
        entry["suppressions"] = [
            {"kind": "inSource", "justification": s.reason}
        ]
        results.append(entry)
    if strict:
        for s in stale:
            results.append(
                _result(
                    stale_index,
                    "stale-suppression",
                    s.path,
                    s.line,
                    s.render().split("[stale-suppression] ", 1)[-1],
                    "warning",
                )
            )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pcon-lint",
                        "informationUri": (
                            "docs/STATIC_ANALYSIS.md"
                        ),
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "description": {
                            "text": "repository checkout root"
                        }
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path, rules, project, findings, suppressions, stale,
                strict):
    doc = sarif_document(
        rules, project, findings, suppressions, stale, strict
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def sarif_selftest():
    """The writer's own invariants, checked without a schema."""
    import engine

    errors = []

    class _R(engine.Rule):
        name = "demo"
        description = "demo rule"

    rules = [_R()]
    findings = [engine.Finding("demo", "src/a.cc", 3, "boom")]
    sups = [engine.Suppression("demo", "src/b.cc", 7, "why not")]
    stale = [engine.StaleSuppression("demo", "src/c.cc", 9)]
    doc = sarif_document(rules, None, findings, sups, stale, True)
    if doc["version"] != SARIF_VERSION:
        errors.append("sarif selftest: wrong version")
    run = doc["runs"][0]
    ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    if ids != ["demo", "stale-suppression"]:
        errors.append(f"sarif selftest: rule ids wrong: {ids}")
    levels = [r["level"] for r in run["results"]]
    if levels != ["error", "note", "warning"]:
        errors.append(f"sarif selftest: levels wrong: {levels}")
    for r in run["results"]:
        loc = r["locations"][0]["physicalLocation"]
        if loc["artifactLocation"]["uriBaseId"] != "SRCROOT":
            errors.append("sarif selftest: missing SRCROOT base")
        if r["ruleIndex"] >= len(ids):
            errors.append("sarif selftest: ruleIndex out of range")
    suppressed = [r for r in run["results"] if "suppressions" in r]
    if (
        len(suppressed) != 1
        or suppressed[0]["suppressions"][0]["kind"] != "inSource"
    ):
        errors.append(
            "sarif selftest: suppression audit trail missing"
        )
    # Non-strict runs must not leak stale markers into results.
    doc = sarif_document(rules, None, findings, sups, stale, False)
    if len(doc["runs"][0]["results"]) != 2:
        errors.append(
            "sarif selftest: stale results emitted without --strict"
        )
    return errors
