"""Wall-clock rule: every timestamp in src/ derives from sim time.

The bench-timing rule polices ``bench/``; the determinism rule
polices the deterministic core. This rule closes the gap: *all* of
``src/`` — including os/, util/, fault/, and workloads/ where the
determinism rule does not reach — must take time from the simulation
clock (``sim::Simulation::now()``), never from the host. A host
timestamp anywhere in src/ is either a latent determinism bug (it
will differ per shard thread under the PDES engine) or a
self-measurement that belongs in ``telemetry::OverheadProfiler``.

Flags ``std::chrono`` system/steady/high_resolution clocks, the C
clock family (``time``/``clock``/``gettimeofday``/``clock_gettime``
/``timespec_get``), and TSC intrinsics (``__rdtsc``/``__rdtscp``/
``_mm_rdtsc``).

The two sanctioned exceptions keep their existing markers: the
OverheadProfiler's self-measurement sites carry
``NOLINT-DETERMINISM(reason)``, which this rule honours exactly like
the determinism rule does (one marker satisfies both, and stale
detection still applies to it). Anything new needs a justified
``allow(wall-clock)`` — bare allows do not suppress.
"""

import re

from engine import Finding, Rule
from rules_determinism import LEGACY_SUPPRESS_RE

PATTERNS = [
    (
        re.compile(
            r"std\s*::\s*chrono\s*::\s*"
            r"(?:system_clock|steady_clock|high_resolution_clock)"
        ),
        "host chrono clock; derive timestamps from "
        "sim::Simulation::now()",
    ),
    (
        re.compile(
            r"(?<![\w:.])(?:time|clock|gettimeofday|clock_gettime|"
            r"timespec_get)\s*\("
        ),
        "C wall-clock call; derive timestamps from "
        "sim::Simulation::now()",
    ),
    (
        re.compile(r"(?<!\w)(?:__rdtscp?|_mm_rdtsc)\s*\("),
        "TSC read; cycle counters differ per shard thread, use sim "
        "time (self-measurement belongs in "
        "telemetry::OverheadProfiler)",
    ),
]


class WallClockRule(Rule):
    name = "wall-clock"
    description = (
        "all of src/ takes time from the sim clock; host clocks "
        "only in bench/ and telemetry::OverheadProfiler"
    )
    scope = ("src",)
    require_justification = True

    def run(self, project):
        findings = []
        for source in project.files_under(self.scope):
            for idx, line in enumerate(source.blanked_lines):
                for regex, why in PATTERNS:
                    if regex.search(line):
                        findings.append(
                            Finding(
                                self.name, source.rel, idx + 1, why
                            )
                        )
        return findings

    def suppression_at(self, source, idx):
        """Honour the OverheadProfiler's existing
        NOLINT-DETERMINISM(reason) markers so one marker satisfies
        both this rule and the determinism rule."""
        for look in (idx, idx - 1):
            if 0 <= look < len(source.raw_lines):
                m = LEGACY_SUPPRESS_RE.search(source.raw_lines[look])
                if m:
                    return m.group(1).strip(), look
        return super().suppression_at(source, idx)

    def suppression_markers(self, source):
        """Track legacy markers for staleness only when they sit on
        a wall-clock pattern (or the line above one): elsewhere in
        src/ the same marker spelling suppresses *other* determinism
        hazards and is not this rule's to police."""
        out = set(super().suppression_markers(source))
        for idx, line in enumerate(source.raw_lines):
            if not LEGACY_SUPPRESS_RE.search(line):
                continue
            nearby = source.blanked_lines[idx : idx + 2]
            if any(
                regex.search(text)
                for text in nearby
                for regex, _ in PATTERNS
            ):
                out.add(idx)
        return sorted(out)

    def selftest(self):
        errors = []
        rule = WallClockRule()
        project = rule.project_from_texts(
            {
                "src/os/sched.cc": (
                    "auto t0 = std::chrono::steady_clock::now();\n"
                    "double when = sim.now();\n"
                    "time_t raw = time(nullptr);\n"
                    "uint64_t c = __rdtsc();\n"
                    "int timeout = settle_time(3);\n"
                ),
                "src/telemetry/overhead.cc": (
                    "// NOLINT-DETERMINISM(profiler self-measures "
                    "its own host-time overhead)\n"
                    "auto t = std::chrono::steady_clock::now();\n"
                ),
                "src/util/fmt.cc": (
                    "// pcon-lint: allow(wall-clock)\n"
                    "clock_t c = clock();\n"
                ),
            }
        )
        from engine import run_rules_with_stale

        kept, sups, stale = run_rules_with_stale(project, [rule])
        got = sorted((f.path, f.line) for f in kept)
        want = [
            ("src/os/sched.cc", 1),
            ("src/os/sched.cc", 3),
            ("src/os/sched.cc", 4),
            ("src/util/fmt.cc", 2),  # bare allow must not suppress
        ]
        if got != want:
            errors.append(
                f"wall-clock selftest: expected findings at {want}, "
                f"got {got} (sim.now(), settle_time() and the "
                f"legacy-marked profiler line must stay quiet)"
            )
        if len(sups) != 1 or "self-measures" not in sups[0].reason:
            errors.append(
                "wall-clock selftest: legacy NOLINT-DETERMINISM "
                "marker not honoured"
            )
        if [(s.path, s.line) for s in stale] != [
            ("src/util/fmt.cc", 1)
        ]:
            errors.append(
                "wall-clock selftest: bare allow() should be "
                "reported stale"
            )
        return errors
