"""Pointer-order rule: never order or hash by heap address.

Ordering anything by a raw pointer value ties the result to the
allocator's address choices — different across runs, platforms, and
(fatally, for the PDES gate) across shard counts. The codebase
assigns dense integer ids to every simulated entity precisely so
code never needs address-based ordering. This rule flags the
patterns through which addresses leak into an observable order:

  * ``std::map``/``set`` (and multi- variants) keyed by a raw
    pointer — iteration order is the allocation order;
  * ``std::unordered_map``/``set`` keyed by a raw pointer — bucket
    placement (hence iteration order) hashes the address;
  * ``std::less<T*>`` / ``std::greater<T*>`` — an explicit
    address comparator;
  * ``std::hash<T*>`` — an explicit address hasher;
  * ``reinterpret_cast<uintptr_t>`` — laundering an address into an
    integer, almost always to compare or hash it.

Smart-pointer keys (``unique_ptr``/``shared_ptr``) compare by the
held address and are caught by the same ``*``-in-key patterns where
spelled with a raw pointer; a genuinely order-insensitive use (e.g.
an address key in a debug-only cache) takes a justified
``allow(pointer-order)``.
"""

import re

from engine import Finding, Rule

PATTERNS = [
    (
        re.compile(
            r"std\s*::\s*(?:map|set|multimap|multiset)\s*<"
            r"[^,<>]*\*\s*[,>]"
        ),
        "ordered container keyed by raw pointer; iteration order "
        "is the allocator's, use dense ids",
    ),
    (
        re.compile(
            r"std\s*::\s*unordered_(?:map|set|multimap|multiset)"
            r"\s*<[^,<>]*\*\s*[,>]"
        ),
        "unordered container keyed by raw pointer; bucket order "
        "hashes the address, use dense ids",
    ),
    (
        re.compile(r"std\s*::\s*(?:less|greater)\s*<[^<>]*\*\s*>"),
        "explicit pointer comparator; ordering by address is not "
        "reproducible",
    ),
    (
        re.compile(r"std\s*::\s*hash\s*<[^<>]*\*\s*>"),
        "explicit pointer hasher; hashing by address is not "
        "reproducible",
    ),
    (
        re.compile(
            r"reinterpret_cast\s*<\s*(?:std\s*::\s*)?uintptr_t\s*>"
        ),
        "address laundered into an integer; if this feeds any "
        "order or hash it is not reproducible",
    ),
]


class PointerOrderRule(Rule):
    name = "pointer-order"
    description = (
        "no ordering, sorting, or hashing by raw pointer value "
        "where output can observe it — dense ids exist for this"
    )
    scope = ("src",)
    require_justification = True

    def run(self, project):
        findings = []
        for source in project.files_under(self.scope):
            for idx, line in enumerate(source.blanked_lines):
                for regex, why in PATTERNS:
                    if regex.search(line):
                        findings.append(
                            Finding(
                                self.name, source.rel, idx + 1, why
                            )
                        )
        return findings

    def selftest(self):
        errors = []
        rule = PointerOrderRule()
        project = rule.project_from_texts(
            {
                "src/core/index.cc": (
                    "std::map<Task *, int> order;\n"
                    "std::unordered_set<Segment *> live;\n"
                    "std::set<std::less<Node *>> cmp;\n"
                    "std::hash<Span *> h;\n"
                    "auto key = reinterpret_cast<uintptr_t>(p);\n"
                    "std::map<int, Task *> by_id;\n"
                    "std::unordered_map<std::string, int> names;\n"
                    "// pcon-lint: allow(pointer-order) debug-only "
                    "identity cache, never serialized\n"
                    "std::hash<Op *> debug_h;\n"
                ),
            }
        )
        from engine import run_rules_with_stale

        kept, sups, _ = run_rules_with_stale(project, [rule])
        got = sorted({f.line for f in kept})
        if got != [1, 2, 3, 4, 5]:
            errors.append(
                f"pointer-order selftest: expected findings on "
                f"lines 1-5 only, got {got} (pointer *values* in "
                f"maps and string keys must stay quiet; the "
                f"justified allow must suppress line 9)"
            )
        if len(sups) != 1:
            errors.append(
                "pointer-order selftest: justified allow not "
                "honoured"
            )
        return errors
