"""pcon-lint rule engine.

A rule is a class with a stable name, a scope (directories it scans,
relative to the repository root), and a ``run(project)`` method that
returns Finding objects. The engine owns everything shared between
rules: file discovery, comment/string blanking, suppression comments,
stale-suppression detection, and the human/JSON reports.

Suppression: append ``// pcon-lint: allow(<rule>)`` to the offending
line or the line directly above it. Rules may additionally honour
their own legacy suppression markers (the determinism rule accepts
``NOLINT-DETERMINISM(reason)``). A suppression that no longer
silences any finding is reported as *stale* so exemptions cannot rot;
``--strict`` turns stale suppressions into failures.
"""

import dataclasses
import json
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}

ALLOW_RE = re.compile(r"pcon-lint:\s*allow\(([a-z0-9_,\- ]+)\)")

# A C++ raw string literal opener: optional encoding prefix, R, quote,
# then a delimiter of at most 16 non-special characters before '('.
RAW_STRING_PREFIXES = ("u8R", "uR", "UR", "LR", "R")


@dataclasses.dataclass
class Finding:
    """One rule violation at a file:line."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    message: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Suppression:
    """A finding silenced by an allow() or legacy marker."""

    rule: str
    path: str
    line: int
    reason: str

    def render(self):
        return (
            f"note: {self.path}:{self.line}: suppressed "
            f"[{self.rule}]: {self.reason}"
        )


@dataclasses.dataclass
class StaleSuppression:
    """An allow()/legacy marker that silenced nothing this run."""

    rule: str
    path: str
    line: int  # 1-based line of the marker itself
    note: str = ""  # overrides the default explanation when set

    def render(self):
        why = self.note or (
            f"'{self.rule}' suppression no longer matches any "
            f"finding; delete it (suppressions must not rot)"
        )
        return f"{self.path}:{self.line}: [stale-suppression] {why}"


def _raw_string_start(text, i):
    """If a raw string literal's opening quote sits at ``i``, return
    the index just past its opening ``(`` sequence's delimiter — i.e.
    (delimiter, content_start) — else None. ``text[i]`` must be '"'."""
    for prefix in RAW_STRING_PREFIXES:
        start = i - len(prefix)
        if start < 0 or text[start:i] != prefix:
            continue
        before = text[start - 1] if start > 0 else ""
        if before.isalnum() or before == "_":
            continue  # identifier ending in R (e.g. FACTOR"...")
        j = i + 1
        delim = []
        while (
            j < len(text)
            and text[j] not in '()\\ \t\n"'
            and len(delim) <= 16
        ):
            delim.append(text[j])
            j += 1
        if j < len(text) and text[j] == "(":
            return "".join(delim), j + 1
        return None  # R"... without '(' — malformed; scan normally
    return None


def blank_comments_and_strings(text):
    """Replace comment and literal bodies with spaces, preserving
    line structure so reported line numbers stay meaningful. Handles
    line/block comments, character literals, ordinary strings with
    escapes, and raw string literals (``R"delim(...)delim"``) — a
    ``//`` or ``"`` inside a raw string must not derail the scan."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                raw = _raw_string_start(text, i)
                if raw is not None:
                    delim, content = raw
                    closer = ')' + delim + '"'
                    end = text.find(closer, content)
                    if end < 0:
                        end = n  # unterminated; blank to EOF
                    else:
                        end += len(closer)
                    for k in range(i, end):
                        out.append("\n" if text[k] == "\n" else " ")
                    i = end
                    continue
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated; recover
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class SourceFile:
    """One scanned file: raw text plus a comment/string-blanked copy
    with identical line structure."""

    def __init__(self, rel, text):
        self.rel = rel  # repo-relative posix path (str)
        self.text = text
        self.raw_lines = text.splitlines()
        self.blanked = blank_comments_and_strings(text)
        self.blanked_lines = self.blanked.splitlines()


class Project:
    """The scanned tree. Files are loaded once and shared by rules."""

    def __init__(self, root, files):
        self.root = pathlib.Path(root)
        self.files = files  # list[SourceFile], sorted by rel

    @classmethod
    def load(cls, root, scopes):
        root = pathlib.Path(root).resolve()
        seen = {}
        for rel in scopes:
            base = root / rel
            if not base.exists():
                raise FileNotFoundError(f"no such directory: {base}")
            for p in sorted(base.rglob("*")):
                if p.suffix in SOURCE_SUFFIXES and p.is_file():
                    key = p.relative_to(root).as_posix()
                    if key not in seen:
                        seen[key] = SourceFile(
                            key,
                            p.read_text(
                                encoding="utf-8", errors="replace"
                            ),
                        )
        return cls(root, [seen[k] for k in sorted(seen)])

    def files_under(self, prefixes):
        out = []
        for f in self.files:
            if any(
                f.rel == p or f.rel.startswith(p.rstrip("/") + "/")
                for p in prefixes
            ):
                out.append(f)
        return out


class Rule:
    """Base class for pcon-lint rules."""

    #: stable rule name, used in reports and allow(<name>) comments
    name = "base"
    #: one-line description for --list-rules and the JSON report
    description = ""
    #: directories (repo-relative) this rule scans
    scope = ("src",)
    #: when True, a bare ``allow(<rule>)`` does not suppress — the
    #: marker must carry justification text after the closing paren
    require_justification = False

    def run(self, project):
        """Return a list of Finding for the given project."""
        raise NotImplementedError

    def selftest(self):
        """Run the rule against embedded synthetic violations.

        Returns a list of error strings; empty means the fixtures
        behaved (violations were flagged, clean code was not).
        """
        return []

    # -- helpers shared by subclasses --------------------------------

    def suppression_at(self, source, idx):
        """(reason, marker_idx) for an allow(<rule>) marker on this or
        the preceding raw line, or None. Both indices are 0-based."""
        for look in (idx, idx - 1):
            if 0 <= look < len(source.raw_lines):
                m = ALLOW_RE.search(source.raw_lines[look])
                if m:
                    names = [
                        n.strip() for n in m.group(1).split(",")
                    ]
                    if self.name in names:
                        tail = source.raw_lines[look][
                            m.end():
                        ].strip()
                        if self.require_justification:
                            if not tail:
                                # A bare allow() records nothing;
                                # the finding stands (and the dead
                                # marker surfaces as stale).
                                continue
                            return (
                                f"allow({self.name}): {tail}",
                                look,
                            )
                        return (
                            f"pcon-lint: allow({self.name})",
                            look,
                        )
        return None

    def suppression_reason(self, source, idx):
        """An allow(<rule>) marker on this or the preceding raw line,
        or None. ``idx`` is 0-based."""
        hit = self.suppression_at(source, idx)
        return hit[0] if hit else None

    def suppression_markers(self, source):
        """0-based line indices of every suppression marker naming
        this rule in the file (for stale detection)."""
        out = []
        for idx, line in enumerate(source.raw_lines):
            m = ALLOW_RE.search(line)
            if m:
                names = [n.strip() for n in m.group(1).split(",")]
                if self.name in names:
                    out.append(idx)
        return out

    def project_from_texts(self, texts):
        """Build an in-memory Project for selftests.

        ``texts`` maps repo-relative paths to file contents.
        """
        files = [
            SourceFile(rel, text) for rel, text in sorted(texts.items())
        ]
        return Project(pathlib.Path("."), files)


def split_suppressed(rule, project, findings, used=None):
    """Partition raw findings into (kept, suppressed) using the
    shared allow() comment convention. When ``used`` (a set) is given,
    record each consumed marker as (path, marker_line_1based)."""
    kept, suppressed = [], []
    by_rel = {f.rel: f for f in project.files}
    for finding in findings:
        source = by_rel.get(finding.path)
        hit = None
        if source is not None:
            hit = rule.suppression_at(source, finding.line - 1)
        if hit:
            reason, marker_idx = hit
            if used is not None:
                used.add((finding.path, marker_idx + 1))
            suppressed.append(
                Suppression(
                    finding.rule, finding.path, finding.line, reason
                )
            )
        else:
            kept.append(finding)
    return kept, suppressed


def stale_suppressions(rule, project, used):
    """Markers naming this rule (within its scope) that silenced
    nothing. ``used`` holds (path, marker_line_1based) pairs."""
    stale = []
    for source in project.files_under(rule.scope):
        for idx in rule.suppression_markers(source):
            if (source.rel, idx + 1) not in used:
                stale.append(
                    StaleSuppression(rule.name, source.rel, idx + 1)
                )
    return stale


def unknown_rule_markers(project, known_rule_names):
    """allow() markers naming rules that do not exist — usually a
    typo, which would otherwise silence nothing forever without a
    peep. Returned as StaleSuppression entries (fails --strict)."""
    known = set(known_rule_names)
    out = []
    for source in project.files:
        for idx, line in enumerate(source.raw_lines):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            names = [n.strip() for n in m.group(1).split(",")]
            for name in names:
                if name and name not in known:
                    out.append(
                        StaleSuppression(
                            name,
                            source.rel,
                            idx + 1,
                            note=(
                                f"allow({name}) names no known "
                                f"rule; fix the rule name or "
                                f"delete the marker"
                            ),
                        )
                    )
    return out


def run_rules_with_stale(project, rules, known_rule_names=None):
    """Run every rule; returns (findings, suppressions, stale), each
    sorted by path, line, rule.

    The consumed-marker set is shared across rules so a combined
    ``allow(a, b)`` marker used by either rule is stale under
    neither; an unused marker is reported once, not once per rule it
    names. When ``known_rule_names`` is given (the full inventory,
    even when only a subset runs), markers naming nonexistent rules
    are also reported as stale."""
    findings, suppressions = [], []
    used = set()
    candidates = []
    for rule in rules:
        raw = rule.run(project)
        kept, suppressed = split_suppressed(rule, project, raw, used)
        findings.extend(kept)
        suppressions.extend(suppressed)
        candidates.append(rule)
    stale, stale_seen = [], set()
    for rule in candidates:
        for entry in stale_suppressions(rule, project, used):
            spot = (entry.path, entry.line)
            if spot not in stale_seen:
                stale_seen.add(spot)
                stale.append(entry)
    if known_rule_names is not None:
        stale.extend(unknown_rule_markers(project, known_rule_names))
    key = lambda f: (f.path, f.line, f.rule)  # noqa: E731
    return (
        sorted(findings, key=key),
        sorted(suppressions, key=key),
        sorted(stale, key=lambda s: (s.path, s.line, s.rule)),
    )


def run_rules(project, rules):
    """Run every rule; returns (findings, suppressions) sorted by
    path, line, rule. Thin wrapper kept for the lint_determinism
    shim and older callers that do not consume stale markers."""
    findings, suppressions, _ = run_rules_with_stale(project, rules)
    return findings, suppressions


def report_human(rules, project, findings, suppressions,
                 out=sys.stdout, stale=(), strict=False):
    for s in suppressions:
        out.write(s.render() + "\n")
    for s in stale:
        prefix = "" if strict else "note: "
        out.write(prefix + s.render() + "\n")
    failed = bool(findings) or (strict and stale)
    if findings:
        for f in findings:
            out.write(f.render() + "\n")
    if failed:
        out.write(
            f"\npcon-lint: {len(findings)} finding(s) and "
            f"{len(stale)} stale suppression(s) from "
            f"{len(rules)} rule(s) over {len(project.files)} "
            f"file(s). Silence a deliberate use with "
            f"`// pcon-lint: allow(<rule>)` on the offending line "
            f"or the line above it; delete suppressions that no "
            f"longer fire.\n"
        )
    else:
        names = ", ".join(r.name for r in rules)
        out.write(
            f"pcon-lint: clean ({names}; {len(project.files)} files, "
            f"{len(suppressions)} suppression(s), "
            f"{len(stale)} stale)\n"
        )


def report_json(rules, project, findings, suppressions,
                out=sys.stdout, stale=(), strict=False):
    doc = {
        "tool": "pcon-lint",
        "rules": [
            {"name": r.name, "description": r.description}
            for r in rules
        ],
        "files_scanned": len(project.files),
        "findings": [dataclasses.asdict(f) for f in findings],
        "suppressions": [dataclasses.asdict(s) for s in suppressions],
        "stale_suppressions": [
            dataclasses.asdict(s) for s in stale
        ],
        "strict": bool(strict),
        "clean": not findings and not (strict and stale),
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")


def engine_selftest():
    """Exercise the shared scanner against tricky inputs. Returns a
    list of error strings; empty means pass."""
    errors = []

    # Raw string literals: '//' and '"' inside the body must not open
    # a comment or string state, and line structure must survive.
    text = (
        'const char *q = R"(no // comment "quote\n'
        'still raw)" ;\n'
        "int after = 1; // real comment\n"
    )
    blanked = blank_comments_and_strings(text)
    lines = blanked.splitlines()
    if len(lines) != 3:
        errors.append(
            f"engine selftest: raw string broke line structure "
            f"({len(lines)} lines, want 3)"
        )
    else:
        if "//" in lines[0] or "quote" in lines[0]:
            errors.append(
                "engine selftest: raw string body leaked into the "
                "blanked text"
            )
        if ";" not in lines[1]:
            errors.append(
                "engine selftest: code after the raw string "
                "terminator was blanked"
            )
        if "int after = 1;" not in lines[2]:
            errors.append(
                "engine selftest: code after a raw string was "
                "corrupted"
            )
        if "real comment" in lines[2]:
            errors.append(
                "engine selftest: comment after a raw string "
                "survived blanking"
            )

    # Custom delimiters, encoding prefixes, and an identifier that
    # merely ends in R (not a raw string prefix).
    text = (
        'auto a = u8R"x(body " )x" + 1;\n'
        'auto b = LR"(multi\n'
        'line)" ;\n'
        'int FACTOR = 2; const char *s = "FACTOR";\n'
    )
    blanked = blank_comments_and_strings(text)
    lines = blanked.splitlines()
    if len(lines) != 4 or "+ 1;" not in lines[0]:
        errors.append(
            "engine selftest: custom-delimiter raw string mishandled"
        )
    elif ";" not in lines[2]:
        errors.append(
            "engine selftest: multi-line raw string terminator missed"
        )
    elif "int FACTOR = 2;" not in lines[3] or '"FACTOR"' in lines[3]:
        errors.append(
            "engine selftest: identifier ending in R confused the "
            "raw-string detector"
        )

    # An unterminated raw string blanks to EOF without crashing.
    blanked = blank_comments_and_strings('auto c = R"(never ends\nx')
    if "never" in blanked or "x" in blanked.splitlines()[-1]:
        errors.append(
            "engine selftest: unterminated raw string not blanked "
            "to EOF"
        )

    # Ordinary escapes still work next to raw strings.
    blanked = blank_comments_and_strings(
        'const char *e = "a\\"b"; int live = 3;\n'
    )
    if "int live = 3;" not in blanked:
        errors.append(
            "engine selftest: escaped quote handling regressed"
        )

    # -- suppression machinery ----------------------------------------

    class _NeedleRule(Rule):
        """Flags every line containing NEEDLE."""

        scope = ("src",)

        def __init__(self, name, require_justification=False):
            self.name = name
            self.require_justification = require_justification

        def run(self, project):
            out = []
            for f in project.files_under(self.scope):
                for idx, line in enumerate(f.blanked_lines):
                    if "NEEDLE" in line:
                        out.append(
                            Finding(self.name, f.rel, idx + 1,
                                    "needle")
                        )
            return out

    helper = Rule()
    text = (
        "int a = NEEDLE;  // pcon-lint: allow(na) same line\n"
        "// pcon-lint: allow(na) line above\n"
        "int b = NEEDLE;\n"
        "int c = NEEDLE;\n"
    )
    project = helper.project_from_texts({"src/x.cc": text})
    rule = _NeedleRule("na")
    findings, sups, stale = run_rules_with_stale(project, [rule])
    if len(sups) != 2 or len(findings) != 1 or findings[0].line != 4:
        errors.append(
            "engine selftest: same-line / line-above allow() "
            "placement not both honoured"
        )
    if stale:
        errors.append(
            "engine selftest: consumed line-above marker reported "
            "stale"
        )

    # A combined allow(a, b) marker consumed by rule 'a' must not be
    # stale under rule 'b'; one that neither consumes is reported
    # exactly once.
    text = (
        "int a = NEEDLE;  // pcon-lint: allow(na, nb)\n"
        "int clean = 0;  // pcon-lint: allow(na, nb)\n"
    )
    project = helper.project_from_texts({"src/y.cc": text})
    findings, sups, stale = run_rules_with_stale(
        project, [_NeedleRule("na"), _NeedleRule("nb")]
    )
    if len(stale) != 1 or stale[0].line != 2:
        errors.append(
            f"engine selftest: shared-marker staleness wrong "
            f"({len(stale)} stale, want 1 at line 2)"
        )

    # require_justification: a bare allow() does not suppress (the
    # finding stands, the marker is stale); justified text does.
    text = (
        "int a = NEEDLE;  // pcon-lint: allow(nj)\n"
        "int b = NEEDLE;  // pcon-lint: allow(nj) caller holds lock\n"
    )
    project = helper.project_from_texts({"src/z.cc": text})
    findings, sups, stale = run_rules_with_stale(
        project, [_NeedleRule("nj", require_justification=True)]
    )
    if len(findings) != 1 or findings[0].line != 1:
        errors.append(
            "engine selftest: bare allow() suppressed a "
            "justification-requiring rule"
        )
    if len(sups) != 1 or "caller holds lock" not in sups[0].reason:
        errors.append(
            "engine selftest: justified allow() not honoured or "
            "reason text lost"
        )
    if len(stale) != 1 or stale[0].line != 1:
        errors.append(
            "engine selftest: bare allow() on a justification-"
            "requiring rule not reported stale"
        )

    # Markers naming nonexistent rules fail when the inventory is
    # supplied, and pass through silently when it is not (selftest
    # and single-rule callers).
    text = "int ok = 0;  // pcon-lint: allow(no-such-rule)\n"
    project = helper.project_from_texts({"src/w.cc": text})
    _, _, stale = run_rules_with_stale(
        project, [_NeedleRule("na")], known_rule_names=["na"]
    )
    if len(stale) != 1 or "names no known rule" not in stale[0].note:
        errors.append(
            "engine selftest: unknown-rule allow() marker not "
            "reported"
        )
    _, _, stale = run_rules_with_stale(project, [_NeedleRule("na")])
    if stale:
        errors.append(
            "engine selftest: unknown-rule check ran without an "
            "inventory"
        )
    return errors
