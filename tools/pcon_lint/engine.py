"""pcon-lint rule engine.

A rule is a class with a stable name, a scope (directories it scans,
relative to the repository root), and a ``run(project)`` method that
returns Finding objects. The engine owns everything shared between
rules: file discovery, comment/string blanking, suppression comments,
and the human/JSON reports.

Suppression: append ``// pcon-lint: allow(<rule>)`` to the offending
line or the line directly above it. Rules may additionally honour
their own legacy suppression markers (the determinism rule accepts
``NOLINT-DETERMINISM(reason)``).
"""

import dataclasses
import json
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}

ALLOW_RE = re.compile(r"pcon-lint:\s*allow\(([a-z0-9_,\- ]+)\)")


@dataclasses.dataclass
class Finding:
    """One rule violation at a file:line."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    message: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Suppression:
    """A finding silenced by an allow() or legacy marker."""

    rule: str
    path: str
    line: int
    reason: str

    def render(self):
        return (
            f"note: {self.path}:{self.line}: suppressed "
            f"[{self.rule}]: {self.reason}"
        )


def blank_comments_and_strings(text):
    """Replace comment and literal bodies with spaces, preserving
    line structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated; recover
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class SourceFile:
    """One scanned file: raw text plus a comment/string-blanked copy
    with identical line structure."""

    def __init__(self, rel, text):
        self.rel = rel  # repo-relative posix path (str)
        self.text = text
        self.raw_lines = text.splitlines()
        self.blanked = blank_comments_and_strings(text)
        self.blanked_lines = self.blanked.splitlines()


class Project:
    """The scanned tree. Files are loaded once and shared by rules."""

    def __init__(self, root, files):
        self.root = pathlib.Path(root)
        self.files = files  # list[SourceFile], sorted by rel

    @classmethod
    def load(cls, root, scopes):
        root = pathlib.Path(root).resolve()
        seen = {}
        for rel in scopes:
            base = root / rel
            if not base.exists():
                raise FileNotFoundError(f"no such directory: {base}")
            for p in sorted(base.rglob("*")):
                if p.suffix in SOURCE_SUFFIXES and p.is_file():
                    key = p.relative_to(root).as_posix()
                    if key not in seen:
                        seen[key] = SourceFile(
                            key,
                            p.read_text(
                                encoding="utf-8", errors="replace"
                            ),
                        )
        return cls(root, [seen[k] for k in sorted(seen)])

    def files_under(self, prefixes):
        out = []
        for f in self.files:
            if any(
                f.rel == p or f.rel.startswith(p.rstrip("/") + "/")
                for p in prefixes
            ):
                out.append(f)
        return out


class Rule:
    """Base class for pcon-lint rules."""

    #: stable rule name, used in reports and allow(<name>) comments
    name = "base"
    #: one-line description for --list-rules and the JSON report
    description = ""
    #: directories (repo-relative) this rule scans
    scope = ("src",)

    def run(self, project):
        """Return a list of Finding for the given project."""
        raise NotImplementedError

    def selftest(self):
        """Run the rule against embedded synthetic violations.

        Returns a list of error strings; empty means the fixtures
        behaved (violations were flagged, clean code was not).
        """
        return []

    # -- helpers shared by subclasses --------------------------------

    def suppression_reason(self, source, idx):
        """An allow(<rule>) marker on this or the preceding raw line,
        or None. ``idx`` is 0-based."""
        for look in (idx, idx - 1):
            if 0 <= look < len(source.raw_lines):
                m = ALLOW_RE.search(source.raw_lines[look])
                if m:
                    names = [
                        n.strip() for n in m.group(1).split(",")
                    ]
                    if self.name in names:
                        return f"pcon-lint: allow({self.name})"
        return None

    def project_from_texts(self, texts):
        """Build an in-memory Project for selftests.

        ``texts`` maps repo-relative paths to file contents.
        """
        files = [
            SourceFile(rel, text) for rel, text in sorted(texts.items())
        ]
        return Project(pathlib.Path("."), files)


def split_suppressed(rule, project, findings):
    """Partition raw findings into (kept, suppressed) using the
    shared allow() comment convention."""
    kept, suppressed = [], []
    by_rel = {f.rel: f for f in project.files}
    for finding in findings:
        source = by_rel.get(finding.path)
        reason = None
        if source is not None:
            reason = rule.suppression_reason(source, finding.line - 1)
        if reason:
            suppressed.append(
                Suppression(
                    finding.rule, finding.path, finding.line, reason
                )
            )
        else:
            kept.append(finding)
    return kept, suppressed


def run_rules(project, rules):
    """Run every rule; returns (findings, suppressions) sorted by
    path, line, rule."""
    findings, suppressions = [], []
    for rule in rules:
        raw = rule.run(project)
        kept, suppressed = split_suppressed(rule, project, raw)
        findings.extend(kept)
        suppressions.extend(suppressed)
    key = lambda f: (f.path, f.line, f.rule)  # noqa: E731
    return sorted(findings, key=key), sorted(suppressions, key=key)


def report_human(rules, project, findings, suppressions, out=sys.stdout):
    for s in suppressions:
        out.write(s.render() + "\n")
    if findings:
        for f in findings:
            out.write(f.render() + "\n")
        out.write(
            f"\npcon-lint: {len(findings)} finding(s) from "
            f"{len(rules)} rule(s) over {len(project.files)} "
            f"file(s). Silence a deliberate use with "
            f"`// pcon-lint: allow(<rule>)` on the offending line "
            f"or the line above it.\n"
        )
    else:
        names = ", ".join(r.name for r in rules)
        out.write(
            f"pcon-lint: clean ({names}; {len(project.files)} files, "
            f"{len(suppressions)} suppression(s))\n"
        )


def report_json(rules, project, findings, suppressions, out=sys.stdout):
    doc = {
        "tool": "pcon-lint",
        "rules": [
            {"name": r.name, "description": r.description}
            for r in rules
        ],
        "files_scanned": len(project.files),
        "findings": [dataclasses.asdict(f) for f in findings],
        "suppressions": [dataclasses.asdict(s) for s in suppressions],
        "clean": not findings,
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")
