"""Cross-TU project model for the shard-isolation analysis.

Builds, from the heuristic scanner (cpp_scan.py), a whole-program
view of the tree that the ownership/escape rules share:

  * per-TU symbol tables — every class/struct/union defined in a
    file, with its head text, line range, data members, and method
    signatures;
  * the include graph — ``#include "..."`` edges resolved against
    the repository layout (project headers are included by their
    src/-relative path, e.g. ``#include "os/kernel.h"``), plus the
    transitive closure per file, so a type reference can be checked
    against what the TU can actually see;
  * the ownership classification — every type resolves to one of
    ``shard-owned`` (lives inside one simulated machine),
    ``cross-shard`` (crosses machine shards through a synchronized
    surface), ``host-global`` (harness/observability state outside
    the simulated world), or ``value`` (passive copyable data), via
    in-source markers, the ownership.toml manifest, or a per-file
    default — in that priority order.

In-source markers come in two equivalent forms:

  * a tag macro in the class head (defined in src/util/sync.h):
    ``class PCON_SHARD_OWNED SegmentQueue { ... };``
  * a comment on the head line or the line above:
    ``// pcon-lint: shard-owned``

A marker that contradicts the manifest is a conflict; the ownership
rule reports it (and every other manifest integrity failure) as a
finding rather than crashing, so a rotten manifest fails CI loudly.

This is still a heuristic model, not a compiler: name resolution is
by unqualified type name (the codebase keeps those unique — the
layering DAG forbids the duplication that would break this), and the
rules built on top accept justified ``allow()`` suppressions for
the residue.
"""

import pathlib
import re
import tomllib

from cpp_scan import CLASS_NAME_RE, scan_all

#: The four ownership classes, in manifest-table order.
OWNERSHIP_CLASSES = (
    "shard-owned",
    "cross-shard",
    "host-global",
    "value",
)

#: Tag macros (src/util/sync.h) → ownership class.
MARKER_MACROS = {
    "PCON_SHARD_OWNED": "shard-owned",
    "PCON_CROSS_SHARD": "cross-shard",
    "PCON_HOST_GLOBAL": "host-global",
    "PCON_VALUE_TYPE": "value",
}

#: Comment-form marker. Word-bounded so ``shard-local(...)`` (the
#: guarded-members annotation) can never match.
MARKER_COMMENT_RE = re.compile(
    r"pcon-lint:\s*(shard-owned|cross-shard|host-global|value)"
    r"(?![\w(-])"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

CLASS_HEAD_RE = re.compile(r"\b(?:class|struct|union)\b")


class TypeDef:
    """One class/struct/union definition in one file."""

    __slots__ = (
        "name",
        "rel",
        "line",
        "end_line",
        "head",
        "path",
        "nested",
        "members",
        "methods",
        "marker",
        "marker_line",
    )

    def __init__(self, name, rel, scope):
        self.name = name
        self.rel = rel
        self.line = scope.line
        self.end_line = scope.end_line
        self.head = scope.head
        self.path = scope.path  # enclosing scope names
        self.nested = False  # defined inside another class or block
        self.members = []  # data-member Statements (class scope)
        self.methods = []  # method-signature Statements
        self.marker = None  # ownership class from an in-source tag
        self.marker_line = 0

    def base_names(self):
        """Unqualified base-class names from the head text."""
        if ":" not in self.head:
            return []
        # 'class X : public a::B, private C' → ['B', 'C']; template
        # arguments are stripped so 'Base<T>' resolves to 'Base'.
        tail = self.head.split(":", 1)[1]
        names = []
        for part in tail.split(","):
            part = re.sub(r"<[^<>]*>", "", part)
            ids = re.findall(r"[A-Za-z_]\w*", part)
            ids = [
                i
                for i in ids
                if i not in ("public", "private", "protected",
                             "virtual", "final", "struct", "class")
            ]
            if ids:
                names.append(ids[-1])
        return names


class TranslationUnit:
    """One scanned file's symbol table."""

    __slots__ = ("rel", "includes", "types")

    def __init__(self, rel):
        self.rel = rel
        self.includes = []  # resolved repo-relative paths
        self.types = []  # TypeDef, in definition order


def _scope_key(scope):
    return scope.path + ((scope.name,) if scope.name else ())


def _marker_for(scope, source):
    """(ownership class, 1-based line) from a tag macro in the head
    or a comment marker on the head line / the line above."""
    for macro, cls in MARKER_MACROS.items():
        if re.search(rf"\b{macro}\b", scope.head):
            return cls, scope.line
    first = scope.line - 1  # 0-based head start
    for idx in (first - 1, first):
        if 0 <= idx < len(source.raw_lines):
            m = MARKER_COMMENT_RE.search(source.raw_lines[idx])
            if m:
                return m.group(1), idx + 1
    return None, 0


def build_translation_unit(source):
    """Scan one SourceFile into a TranslationUnit."""
    tu = TranslationUnit(source.rel)
    for line in source.text.splitlines():
        m = INCLUDE_RE.match(line)
        if m:
            tu.includes.append(m.group(1))
    statements, scopes = scan_all(source.blanked)
    defs = {}
    for scope in scopes:
        if scope.kind != "class" or not scope.name:
            continue
        if not CLASS_HEAD_RE.search(scope.head):
            continue  # enum body
        t = TypeDef(scope.name, source.rel, scope)
        t.marker, t.marker_line = _marker_for(scope, source)
        defs[_scope_key(scope)] = t
        tu.types.append(t)
    by_key = defs
    for t in tu.types:
        # Nested = any enclosing scope path is itself a class here.
        for j in range(1, len(t.path) + 1):
            if t.path[:j] in by_key:
                t.nested = True
                break
    for stmt in statements:
        if stmt.scope != "class":
            continue
        t = by_key.get(stmt.path)
        if t is None:
            continue
        if "(" in stmt.text:
            t.methods.append(stmt)
        else:
            t.members.append(stmt)
    return tu


class ProjectModel:
    """The whole-program model: TUs, include closure, type index."""

    def __init__(self, project):
        self.project = project
        self.tus = {}  # rel -> TranslationUnit
        self.defs = {}  # type name -> [TypeDef]
        for source in project.files:
            tu = build_translation_unit(source)
            self.tus[source.rel] = tu
            for t in tu.types:
                self.defs.setdefault(t.name, []).append(t)
        self._closures = {}

    def resolve_include(self, inc):
        """Resolve an include operand to a scanned repo path."""
        for cand in (f"src/{inc}", inc):
            if cand in self.tus:
                return cand
        return None

    def include_closure(self, rel):
        """Transitive includes of ``rel`` (including itself), as a
        set of repo-relative paths limited to scanned files."""
        cached = self._closures.get(rel)
        if cached is not None:
            return cached
        closure = set()
        stack = [rel]
        while stack:
            cur = stack.pop()
            if cur in closure:
                continue
            closure.add(cur)
            tu = self.tus.get(cur)
            if tu is None:
                continue
            for inc in tu.includes:
                resolved = self.resolve_include(inc)
                if resolved is not None and resolved not in closure:
                    stack.append(resolved)
        # A foo.cc sees its own header's world even when the include
        # spelling differs from the repo-relative path.
        if rel.endswith(".cc"):
            header = rel[:-3] + ".h"
            if header in self.tus and header not in closure:
                closure |= self.include_closure(header)
                closure.add(header)
        self._closures[rel] = closure
        return closure

    def visible(self, rel, type_name):
        """Can ``rel`` see a definition of ``type_name``? Returns
        the TypeDef it sees, or None."""
        for t in self.defs.get(type_name, ()):
            if t.rel in self.include_closure(rel):
                return t
        return None


def model_for(project):
    """The shared ProjectModel for a Project — built once, reused by
    every rule that runs in the same invocation (scanning 200+ files
    into symbol tables per rule would triple the lint runtime)."""
    model = getattr(project, "_pcon_model", None)
    if model is None or model.project is not project:
        model = ProjectModel(project)
        project._pcon_model = model
    return model


class OwnershipManifest:
    """Parsed ownership.toml plus source line numbers for findings."""

    def __init__(self):
        self.classes = {}  # type name -> ownership class
        self.headers = {}  # type name -> declared header
        self.channels = {}  # type name -> reason
        self.file_defaults = {}  # rel path -> ownership class
        self.coverage_layers = []  # e.g. ["os", "core"]
        self.lines = {}  # (table, key) -> 1-based line in the toml
        self.duplicates = []  # (name, class_a, class_b)
        self.errors = []  # load-time messages (malformed manifest)
        self.rel = "ownership.toml"  # repo-relative path for reports

    def line(self, table, key):
        return self.lines.get((table, key), 1)


def load_ownership(path):
    """Parse an ownership.toml. Malformed input becomes entries in
    ``manifest.errors`` — callers turn those into findings, never
    exceptions, so a broken manifest fails CI as a lint result."""
    manifest = OwnershipManifest()
    p = pathlib.Path(path)
    try:
        text = p.read_text(encoding="utf-8")
        doc = tomllib.loads(text)
    except (OSError, tomllib.TOMLDecodeError) as err:
        manifest.errors.append(f"cannot load ownership manifest: {err}")
        return manifest

    # Record the line of every `Key =` under its [table] heading so
    # findings point into the manifest itself.
    table = ""
    for idx, line in enumerate(text.splitlines()):
        m = re.match(r"\s*\[([A-Za-z0-9_.-]+)\]\s*$", line)
        if m:
            table = m.group(1)
            continue
        m = re.match(r'\s*(?:"([^"]+)"|([A-Za-z_]\w*))\s*=', line)
        if m:
            key = m.group(1) or m.group(2)
            manifest.lines.setdefault((table, key), idx + 1)

    known_tables = set(OWNERSHIP_CLASSES) | {
        "channels",
        "files",
        "coverage",
    }
    for table_name in doc:
        if table_name not in known_tables:
            manifest.errors.append(
                f"unknown table [{table_name}] (expected one of "
                f"{', '.join(sorted(known_tables))})"
            )
    for cls in OWNERSHIP_CLASSES:
        entries = doc.get(cls, {})
        if not isinstance(entries, dict):
            manifest.errors.append(
                f"[{cls}] must map type names to headers"
            )
            continue
        for name, header in entries.items():
            if not isinstance(header, str):
                manifest.errors.append(
                    f"[{cls}] {name}: header must be a string"
                )
                continue
            if name in manifest.classes:
                manifest.duplicates.append(
                    (name, manifest.classes[name], cls)
                )
                continue
            manifest.classes[name] = cls
            manifest.headers[name] = header
    channels = doc.get("channels", {})
    if isinstance(channels, dict):
        for name, reason in channels.items():
            manifest.channels[name] = str(reason)
    else:
        manifest.errors.append(
            "[channels] must map type names to a justification"
        )
    files = doc.get("files", {})
    if isinstance(files, dict):
        for rel, cls in files.items():
            if cls not in OWNERSHIP_CLASSES:
                manifest.errors.append(
                    f"[files] {rel}: unknown ownership class "
                    f"'{cls}'"
                )
                continue
            manifest.file_defaults[rel] = cls
    else:
        manifest.errors.append(
            "[files] must map file paths to ownership classes"
        )
    coverage = doc.get("coverage", {})
    layers = coverage.get("layers", []) if isinstance(
        coverage, dict
    ) else []
    if isinstance(layers, list) and all(
        isinstance(x, str) for x in layers
    ):
        manifest.coverage_layers = list(layers)
    else:
        manifest.errors.append(
            "[coverage] layers must be a list of layer names"
        )
    return manifest


class Classification:
    """Resolved ownership for one TypeDef."""

    __slots__ = ("cls", "origin", "rel", "line")

    def __init__(self, cls, origin, rel, line):
        self.cls = cls
        self.origin = origin  # 'marker' | 'manifest' | 'file-default'
        self.rel = rel
        self.line = line


def classify(model, manifest):
    """Resolve every TypeDef against markers and the manifest.

    Returns (classes, conflicts):
      classes — {id(TypeDef): Classification} for every resolved
      type (nested types inherit their innermost classified
      enclosing type at query time, see ``resolve_context``);
      conflicts — [(TypeDef, marker_cls, manifest_cls)] where an
      in-source marker contradicts the manifest.
    """
    classes = {}
    conflicts = []
    for name, defs in model.defs.items():
        manifest_cls = manifest.classes.get(name)
        for t in defs:
            cls = None
            if t.marker is not None:
                cls = t.marker
                origin = "marker"
                line = t.marker_line
                if (
                    manifest_cls is not None
                    and manifest_cls != t.marker
                    and manifest.headers.get(name) == t.rel
                ):
                    conflicts.append((t, t.marker, manifest_cls))
            elif (
                manifest_cls is not None
                and manifest.headers.get(name) == t.rel
            ):
                cls = manifest_cls
                origin = "manifest"
                line = t.line
            elif t.rel in manifest.file_defaults:
                cls = manifest.file_defaults[t.rel]
                origin = "file-default"
                line = t.line
            if cls is not None:
                classes[id(t)] = Classification(
                    cls, origin, t.rel, line
                )
    return classes, conflicts


def class_of_name(model, classes, type_name):
    """The ownership class of a type name, or None. When several
    definitions share the name they must agree; disagreement means
    the model cannot be trusted for this name, so None."""
    seen = set()
    for t in model.defs.get(type_name, ()):
        c = classes.get(id(t))
        if c is not None:
            seen.add(c.cls)
    if len(seen) == 1:
        return next(iter(seen))
    return None


def resolve_context(model, classes, type_def):
    """Ownership class governing ``type_def``'s members: its own
    classification, else the innermost classified enclosing type
    (nested helper structs inherit their owner)."""
    c = classes.get(id(type_def))
    if c is not None:
        return c.cls
    # Walk outward: nearest enclosing class in the same file.
    for name in reversed(type_def.path):
        for t in model.defs.get(name, ()):
            if t.rel == type_def.rel:
                inner = classes.get(id(t))
                if inner is not None:
                    return inner.cls
    return None


def model_selftest():
    """Exercise the model against a synthetic two-file project."""
    import engine

    errors = []
    texts = {
        "src/os/widget.h": (
            "#include \"util/bits.h\"\n"
            "namespace pcon {\n"
            "class PCON_SHARD_OWNED Widget\n"
            "{\n"
            "  public:\n"
            "    void tick();\n"
            "  private:\n"
            "    int spins_ = 0;\n"
            "    struct Inner { int depth_ = 0; };\n"
            "};\n"
            "// pcon-lint: cross-shard\n"
            "class Pipe\n"
            "{\n"
            "    int lanes_ = 0;\n"
            "};\n"
            "}\n"
        ),
        "src/util/bits.h": (
            "namespace pcon {\n"
            "struct Bits { int v_ = 0; };\n"
            "}\n"
        ),
        "src/hub/hub.h": (
            "namespace pcon {\n"
            "class Hub { int n_ = 0; };\n"
            "}\n"
        ),
    }
    files = [
        engine.SourceFile(rel, text)
        for rel, text in sorted(texts.items())
    ]
    project = engine.Project(pathlib.Path("."), files)
    model = ProjectModel(project)

    widget = model.defs.get("Widget", [None])[0]
    if widget is None or widget.marker != "shard-owned":
        errors.append(
            "model selftest: PCON_SHARD_OWNED macro marker missed"
        )
    elif [m.text for m in widget.members] != ["int spins_ = 0"]:
        errors.append(
            f"model selftest: Widget members wrong: "
            f"{[m.text for m in widget.members]}"
        )
    pipe = model.defs.get("Pipe", [None])[0]
    if pipe is None or pipe.marker != "cross-shard":
        errors.append(
            "model selftest: comment-form marker missed"
        )
    inner = model.defs.get("Inner", [None])[0]
    if inner is None or not inner.nested:
        errors.append("model selftest: nested Inner not flagged")

    closure = model.include_closure("src/os/widget.h")
    if "src/util/bits.h" not in closure:
        errors.append(
            "model selftest: include closure missed util/bits.h"
        )
    if model.visible("src/os/widget.h", "Hub") is not None:
        errors.append(
            "model selftest: Hub visible without an include edge"
        )
    if model.visible("src/os/widget.h", "Bits") is None:
        errors.append(
            "model selftest: Bits not visible through the include"
        )

    manifest = OwnershipManifest()
    manifest.classes["Pipe"] = "host-global"
    manifest.headers["Pipe"] = "src/os/widget.h"
    classes, conflicts = classify(model, manifest)
    if class_of_name(model, classes, "Widget") != "shard-owned":
        errors.append("model selftest: Widget classification wrong")
    if len(conflicts) != 1 or conflicts[0][0].name != "Pipe":
        errors.append(
            f"model selftest: expected a Pipe marker/manifest "
            f"conflict, got {[(c[0].name, c[1], c[2]) for c in conflicts]}"
        )
    if resolve_context(model, classes, inner) != "shard-owned":
        errors.append(
            "model selftest: nested Inner did not inherit Widget's "
            "class"
        )
    return errors
