"""Unordered-iteration rule: hash order must not reach the output.

``std::unordered_map``/``set`` iteration order depends on the hash
function, the bucket count history, and (for pointer keys) heap
addresses — none of which the PDES determinism gate controls. A
range-for over an unordered container is fine while the loop only
*aggregates* (sums, maxima, membership — order-independent over
integers), but becomes a reproducibility bug the moment the body
writes to anything observable: ledgers, the event queue, the
journal, exporters, streams, or any recorded sequence.

This rule finds every range-for over a variable declared anywhere in
the tree as an unordered container and flags it when the loop body
contains an observable-write pattern (``journal``/``ledger``/
``record``/``emit``/``enqueue``/``post``/``write``/``export``/
``log``/``<<``). Building a *local* collection (``push_back``/
``insert``) is deliberately not observable — that is the first half
of the sanctioned sorted-copy idiom (collect, sort, then emit). The
fix is a sorted copy (dense ids exist precisely so sorting is cheap)
or a justified ``allow(unordered-iteration)`` explaining why the
order provably cannot reach any output.

This generalizes the determinism rule's ``unordered-iter`` hazard
(which flags *any* core-scope iteration, body-blind) to the whole
tree with body sensitivity; inside the deterministic core both still
apply, and one combined ``allow(determinism, unordered-iteration)``
satisfies them.
"""

import re

from engine import Finding, Rule

DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
    r"[^;{}()]*>(?:\s*&)?\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(
    r"for\s*\([^;)]*:\s*\*?\s*([A-Za-z_]\w*)\s*\)"
)
OBSERVABLE_RE = re.compile(
    r"(?:\b(?:journal|ledger|record|emit|enqueue|"
    r"post|write|export|log)\w*\s*\()|<<"
)

#: How many lines of loop body to scan past the ``for`` line before
#: giving up on finding the matching close brace (defensive bound;
#: loops in this codebase are short).
BODY_SCAN_LIMIT = 80


def loop_body(blanked_lines, idx):
    """The loop body text for a range-for starting on line ``idx``
    (0-based): from its opening brace to the matching close, or the
    single statement when braceless."""
    depth = 0
    seen_open = False
    out = []
    for off in range(BODY_SCAN_LIMIT):
        at = idx + off
        if at >= len(blanked_lines):
            break
        line = blanked_lines[at]
        if off > 0:
            out.append(line)
        for c in line:
            if c == "{":
                depth += 1
                seen_open = True
            elif c == "}":
                depth -= 1
        if seen_open and depth <= 0:
            break
        if not seen_open and off > 0 and ";" in line:
            break  # braceless loop: first statement ends it
    return "\n".join(out)


class UnorderedIterationRule(Rule):
    name = "unordered-iteration"
    description = (
        "range-for over an unordered container whose body writes to "
        "observable state needs a sorted copy"
    )
    scope = ("src",)
    require_justification = True

    def run(self, project):
        files = project.files_under(self.scope)
        unordered_names = set()
        for source in files:
            for m in DECL_RE.finditer(source.blanked):
                unordered_names.add(m.group(1))

        findings = []
        for source in files:
            for idx, line in enumerate(source.blanked_lines):
                for m in RANGE_FOR_RE.finditer(line):
                    if m.group(1) not in unordered_names:
                        continue
                    body = loop_body(source.blanked_lines, idx)
                    if OBSERVABLE_RE.search(body):
                        findings.append(
                            Finding(
                                self.name,
                                source.rel,
                                idx + 1,
                                f"iterating unordered container "
                                f"'{m.group(1)}' with observable "
                                f"writes in the body; hash order "
                                f"reaches the output — iterate a "
                                f"sorted copy",
                            )
                        )
        return findings

    def selftest(self):
        errors = []
        rule = UnorderedIterationRule()
        project = rule.project_from_texts(
            {
                "src/core/ledger.cc": (
                    "std::unordered_map<int, long> by_id;\n"
                    "void flush(Journal &j) {\n"
                    "    for (auto &e : by_id) {\n"
                    "        j.record(e.first, e.second);\n"
                    "    }\n"
                    "}\n"
                    "long total() {\n"
                    "    long sum = 0;\n"
                    "    for (auto &e : by_id) {\n"
                    "        sum += e.second;\n"
                    "    }\n"
                    "    return sum;\n"
                    "}\n"
                    "void drain(Journal &j) {\n"
                    "    std::vector<int> ids;\n"
                    "    for (auto &e : by_id) {\n"
                    "        ids.push_back(e.first);\n"
                    "    }\n"
                    "    std::sort(ids.begin(), ids.end());\n"
                    "    for (int id : ids) {\n"
                    "        j.record(id, by_id.at(id));\n"
                    "    }\n"
                    "}\n"
                ),
            }
        )
        from engine import run_rules_with_stale

        kept, _, _ = run_rules_with_stale(project, [rule])
        got = [(f.path, f.line) for f in kept]
        if got != [("src/core/ledger.cc", 3)]:
            errors.append(
                f"unordered-iteration selftest: expected exactly "
                f"the journal-writing loop at line 3, got {got} "
                f"(aggregation loops and the collect-sort-emit "
                f"idiom must stay quiet)"
            )
        return errors
