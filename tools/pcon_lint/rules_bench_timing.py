"""Bench-timing rule: all host timing in bench/ goes through
pcon_bench.

Benchmark drivers must not measure time themselves — raw
``std::chrono`` clocks, ``clock_gettime``/``gettimeofday``/
``time()``/``clock()``, or rdtsc-style cycle counters anywhere under
bench/ bypass the shared warmup+repeat protocol and the
BENCH_<topic>.json output path, producing numbers that the
regression gate (tools/bench_report) cannot compare. The harness
itself (bench/pcon_bench.h / .cc) is the single exempted
implementation site.

A driver with a genuine reason to touch a clock (e.g. documenting a
host-API cost) takes ``// pcon-lint: allow(bench-timing)`` with the
usual placement rules.
"""

import re

from engine import Finding, Rule

PATTERNS = [
    (
        re.compile(r"std\s*::\s*chrono"),
        "raw std::chrono in a benchmark driver; time through "
        "bench::Suite / bench::scenarioMain (bench/pcon_bench.h)",
    ),
    (
        re.compile(
            r"(?<![\w:.])(?:clock_gettime|gettimeofday|time|clock)"
            r"\s*\("
        ),
        "C clock call in a benchmark driver; use the pcon_bench "
        "harness protocol instead",
    ),
    (
        re.compile(
            r"(?<![\w:.])(?:__rdtsc|_rdtsc|rdtsc|"
            r"__builtin_readcyclecounter)\s*\("
        ),
        "raw cycle counter in a benchmark driver; use "
        "bench::cycleCount() via the harness",
    ),
]


class BenchTimingRule(Rule):
    name = "bench-timing"
    description = (
        "benchmark drivers time only through the pcon_bench "
        "harness; no raw clocks under bench/"
    )
    scope = ("bench",)
    exempt = ("bench/pcon_bench.h", "bench/pcon_bench.cc")

    def run(self, project):
        findings = []
        for source in project.files_under(self.scope):
            if source.rel in self.exempt:
                continue
            for idx, line in enumerate(source.blanked_lines):
                for regex, why in PATTERNS:
                    if regex.search(line):
                        findings.append(
                            Finding(
                                self.name,
                                source.rel,
                                idx + 1,
                                why,
                            )
                        )
        return findings

    def selftest(self):
        errors = []
        rule = BenchTimingRule()
        project = rule.project_from_texts(
            {
                "bench/bench_bad.cc": (
                    "#include <chrono>\n"
                    "auto t0 = std::chrono::steady_clock::now();\n"
                    "struct timespec ts;\n"
                    "clock_gettime(CLOCK_MONOTONIC, &ts);\n"
                    "std::uint64_t c = __rdtsc();\n"
                    "double runtime = simulated_time(x);\n"
                    "// pcon-lint: allow(bench-timing) host API cost\n"
                    "std::uint64_t ok = __rdtsc();\n"
                ),
                "bench/pcon_bench.cc": (
                    "auto t = std::chrono::steady_clock::now();\n"
                ),
                "src/telemetry/overhead.cc": (
                    "auto t = std::chrono::steady_clock::now();\n"
                ),
            }
        )
        from engine import split_suppressed

        kept, suppressed = split_suppressed(
            rule, project, rule.run(project)
        )
        got = sorted((f.path, f.line) for f in kept)
        want = [
            ("bench/bench_bad.cc", 2),
            ("bench/bench_bad.cc", 4),
            ("bench/bench_bad.cc", 5),
        ]
        if got != want:
            errors.append(
                f"bench-timing selftest: expected findings at "
                f"{want}, got {[f.render() for f in kept]}"
            )
        if [(s.path, s.line) for s in suppressed] != [
            ("bench/bench_bad.cc", 8)
        ]:
            errors.append(
                f"bench-timing selftest: expected the allow() "
                f"marker to suppress line 8, got "
                f"{[(s.path, s.line) for s in suppressed]}"
            )
        return errors
