"""Hook-contract rule: wiring order and decorator completeness.

Two statically checkable contracts around os::KernelHooks:

1. Wiring order — a trace::SpanTracer consumes per-container charge
   deltas produced by the core::ContainerManager's hooks, so at every
   wiring site that registers both with the same kernel, the manager
   must be registered (``addHooks(&manager)``) before the tracer.
   Checked per file: the first ContainerManager registration must
   precede the first SpanTracer registration.

2. Decorator forwarding — a KernelHooks subclass that *holds* other
   KernelHooks (a decorator, e.g. telemetry::OverheadProfiler) must
   override every callback declared in src/os/hooks.h; a missing
   override silently swallows that event for every wrapped hook set.
"""

import re

from engine import Finding, Rule

ADDHOOKS_RE = re.compile(r"\baddHooks\s*\(\s*&\s*(\w+)\s*\)")

# `ContainerManager x` / `core::ContainerManager &x` declarations; one
# declarator per line matches the codebase style.
DECL_TEMPLATE = r"\b{type}\s*&?\s+(\w+)\s*[;={{(,)]"

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(\w+)\s*(?:final\s*)?:"
    r"[^;{]*\bKernelHooks\b"
)
HOOK_DECL_RE = re.compile(r"\bvoid\s*\n?\s*(on[A-Z]\w*)\s*\(")
INNER_MEMBER_RE = re.compile(r"\bKernelHooks\s*\*")

FALLBACK_HOOKS = [
    "onContextSwitch",
    "onContextRebind",
    "onSamplingInterrupt",
    "onIoComplete",
    "onTaskExit",
    "onFork",
    "onSegmentReceived",
    "onActuation",
]


def declared_names(source, type_name):
    """Identifiers declared with the given type anywhere in a file."""
    regex = re.compile(DECL_TEMPLATE.format(type=type_name))
    names = set()
    for line in source.blanked_lines:
        for m in regex.finditer(line):
            names.add(m.group(1))
    return names


def hook_callbacks(project):
    """Callback names declared in src/os/hooks.h (kept in sync with
    the header so new hooks are covered automatically)."""
    for source in project.files:
        if source.rel == "src/os/hooks.h":
            found = HOOK_DECL_RE.findall(source.blanked)
            if found:
                return sorted(set(found))
    return FALLBACK_HOOKS


def class_bodies(source):
    """(name, decl_line, body_text) for every KernelHooks subclass."""
    text = source.blanked
    out = []
    for m in CLASS_RE.finditer(text):
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        depth, i = 1, brace + 1
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        decl_line = text.count("\n", 0, m.start()) + 1
        out.append((m.group(1), decl_line, text[brace:i]))
    return out


class HookOrderRule(Rule):
    name = "hook-order"
    description = (
        "SpanTracer registered after ContainerManager; KernelHooks "
        "decorators forward every callback"
    )
    scope = ("src", "tests", "examples", "bench")

    def run(self, project):
        findings = []
        callbacks = hook_callbacks(project)

        for source in project.files_under(self.scope):
            findings.extend(
                self.check_wiring_order(source)
            )
            if source.rel.startswith("src/"):
                findings.extend(
                    self.check_decorators(source, callbacks)
                )
        return findings

    def check_wiring_order(self, source):
        managers = declared_names(source, "ContainerManager")
        tracers = declared_names(source, "SpanTracer")
        if not managers or not tracers:
            return []
        first_manager = first_tracer = None
        tracer_line = None
        for idx, line in enumerate(source.blanked_lines):
            for m in ADDHOOKS_RE.finditer(line):
                name = m.group(1)
                if name in managers and first_manager is None:
                    first_manager = idx + 1
                if name in tracers and first_tracer is None:
                    first_tracer = idx + 1
                    tracer_line = name
        if first_tracer is None or first_manager is None:
            return []
        if first_tracer < first_manager:
            return [
                Finding(
                    self.name,
                    source.rel,
                    first_tracer,
                    f"SpanTracer '{tracer_line}' is registered "
                    f"before the ContainerManager (line "
                    f"{first_manager}); the tracer consumes charge "
                    f"deltas the manager's hooks produce, so it "
                    f"must be added after it",
                )
            ]
        return []

    def check_decorators(self, source, callbacks):
        findings = []
        for cls, decl_line, body in class_bodies(source):
            if not INNER_MEMBER_RE.search(body):
                continue  # holds no inner hooks: not a decorator
            missing = [
                cb
                for cb in callbacks
                if not re.search(
                    r"\b" + cb + r"\s*\(", body
                )
            ]
            if missing:
                findings.append(
                    Finding(
                        self.name,
                        source.rel,
                        decl_line,
                        f"KernelHooks decorator '{cls}' does not "
                        f"forward {', '.join(missing)}; a decorator "
                        f"must override every callback or wrapped "
                        f"hook sets silently miss those events",
                    )
                )
        return findings

    def selftest(self):
        errors = []
        rule = HookOrderRule()

        hooks_h = (
            "class KernelHooks {\n"
            "  public:\n"
            "    virtual void onContextSwitch(int);\n"
            "    virtual void onTaskExit(int);\n"
            "};\n"
        )

        # Tracer registered first: one finding at the tracer line.
        bad = rule.project_from_texts(
            {
                "src/os/hooks.h": hooks_h,
                "tests/wiring.cc": (
                    "core::ContainerManager manager;\n"
                    "trace::SpanTracer tracer;\n"
                    "kernel.addHooks(&tracer);\n"
                    "kernel.addHooks(&manager);\n"
                ),
            }
        )
        found = [
            f for f in rule.run(bad) if f.path == "tests/wiring.cc"
        ]
        if len(found) != 1 or found[0].line != 3:
            errors.append(
                f"hook-order selftest: expected a wiring finding at "
                f"tests/wiring.cc:3, got "
                f"{[f.render() for f in found]}"
            )

        # Correct order: clean.
        good = rule.project_from_texts(
            {
                "src/os/hooks.h": hooks_h,
                "tests/wiring.cc": (
                    "core::ContainerManager manager;\n"
                    "trace::SpanTracer tracer;\n"
                    "kernel.addHooks(&manager);\n"
                    "kernel.addHooks(&tracer);\n"
                ),
            }
        )
        if any(
            f.path == "tests/wiring.cc" for f in rule.run(good)
        ):
            errors.append(
                "hook-order selftest: correct wiring was flagged"
            )

        # A decorator missing a callback must be flagged.
        decorator = rule.project_from_texts(
            {
                "src/os/hooks.h": hooks_h,
                "src/telemetry/wrap.h": (
                    "class Wrap : public os::KernelHooks {\n"
                    "    void onContextSwitch(int) override;\n"
                    "    std::vector<os::KernelHooks *> inner_;\n"
                    "};\n"
                ),
            }
        )
        found = [
            f
            for f in rule.run(decorator)
            if f.path == "src/telemetry/wrap.h"
        ]
        if len(found) != 1 or "onTaskExit" not in found[0].message:
            errors.append(
                f"hook-order selftest: expected missing-onTaskExit "
                f"finding, got {[f.render() for f in found]}"
            )

        # A non-decorator subclass (no inner hooks) is exempt.
        plain = rule.project_from_texts(
            {
                "src/os/hooks.h": hooks_h,
                "src/core/mgr.h": (
                    "class Mgr : public os::KernelHooks {\n"
                    "    void onContextSwitch(int) override;\n"
                    "};\n"
                ),
            }
        )
        if any(
            f.path == "src/core/mgr.h" for f in rule.run(plain)
        ):
            errors.append(
                "hook-order selftest: non-decorator subclass flagged"
            )
        return errors
