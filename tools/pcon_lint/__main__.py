"""pcon-lint command line.

Usage:
  python3 tools/pcon_lint [--root REPO] [--rules a,b] [--json]
                          [--selftest] [--list-rules] [--strict]
                          [--shared-types FILE] [--ownership FILE]
                          [--sarif FILE] [--check-inventory FILE]

Runs the project's static-analysis rules (layering, units,
hook-order, determinism, concurrency-primitives, shared-state,
guarded-members, bench-timing, arena-nodes, plus the shard-isolation
family: ownership, ownership-coverage, shard-escape,
unordered-iteration, pointer-order, wall-clock) over the repository
and reports findings as ``path:line: [rule] message`` lines, as a
JSON document with ``--json`` (used by CI to upload an artifact), or
as SARIF 2.1.0 with ``--sarif FILE`` (uploaded to GitHub code
scanning). ``--selftest`` first exercises the shared engine
(comment/string/raw-string blanking, the scope scanner) and every
selected rule against its embedded synthetic violations — proving
each rule still fails where it must — and then scans the real tree.

Suppressions that no longer silence anything — including markers
naming rules that do not exist — are reported as *stale*;
``--strict`` (the CI mode) turns them into failures so dead
exemptions cannot accumulate. ``--shared-types`` points the
guarded-members rule at an alternate type list and ``--ownership``
points the shard-isolation rules at an alternate ownership manifest
(both used by the fixture tests). ``--check-inventory FILE``
compares the registered rule names against a pinned list and exits
non-zero on drift, so a silently unregistered rule module fails CI.

Exits 0 when clean, 1 with findings, selftest failures, or (under
--strict) stale suppressions, 2 on usage errors. See
docs/STATIC_ANALYSIS.md for the rule catalogue and the
``// pcon-lint: allow(<rule>)`` suppression syntax.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from cpp_scan import scan_selftest
from cpp_model import model_selftest
from engine import (
    Project,
    engine_selftest,
    report_human,
    report_json,
    run_rules_with_stale,
)
from rules_arena import ArenaNodesRule
from rules_bench_timing import BenchTimingRule
from rules_concurrency import ConcurrencyPrimitivesRule
from rules_determinism import DeterminismRule
from rules_guarded_members import GuardedMembersRule
from rules_hook_order import HookOrderRule
from rules_layering import LayeringRule
from rules_ownership import OwnershipCoverageRule, OwnershipRule
from rules_pointer_order import PointerOrderRule
from rules_shard_escape import ShardEscapeRule
from rules_shared_state import SharedStateRule
from rules_units import UnitsRule
from rules_unordered_iteration import UnorderedIterationRule
from rules_wall_clock import WallClockRule
from sarif import sarif_selftest, write_sarif


def default_rules(shared_types_path=None, ownership_path=None):
    return [
        LayeringRule(),
        UnitsRule(),
        HookOrderRule(),
        DeterminismRule(),
        ConcurrencyPrimitivesRule(),
        SharedStateRule(),
        GuardedMembersRule(shared_types_path=shared_types_path),
        BenchTimingRule(),
        ArenaNodesRule(),
        OwnershipRule(
            ownership_path=ownership_path,
            shared_types_path=shared_types_path,
        ),
        OwnershipCoverageRule(ownership_path=ownership_path),
        ShardEscapeRule(ownership_path=ownership_path),
        UnorderedIterationRule(),
        PointerOrderRule(),
        WallClockRule(),
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="pcon-lint", description=__doc__
    )
    parser.add_argument(
        "--root",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent.parent
        ),
        help="repository root (default: the checkout containing "
        "this tool)",
    )
    parser.add_argument(
        "--rules",
        default="all",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the engine/scanner selftests and each selected "
        "rule's embedded synthetic-violation fixtures before "
        "scanning the tree",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) on stale suppressions — allow() or "
        "legacy markers that no longer silence any finding",
    )
    parser.add_argument(
        "--shared-types",
        default=None,
        metavar="FILE",
        help="alternate shared_types.toml for the guarded-members "
        "rule (default: tools/pcon_lint/shared_types.toml)",
    )
    parser.add_argument(
        "--ownership",
        default=None,
        metavar="FILE",
        help="alternate ownership.toml for the shard-isolation "
        "rules (default: tools/pcon_lint/ownership.toml)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="also write the report as SARIF 2.1.0 to FILE (for "
        "GitHub code scanning)",
    )
    parser.add_argument(
        "--check-inventory",
        default=None,
        metavar="FILE",
        help="compare the registered rule names against the pinned "
        "list in FILE (one name per line) and exit non-zero on "
        "drift",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    rules = default_rules(
        shared_types_path=args.shared_types,
        ownership_path=args.ownership,
    )
    inventory = [r.name for r in rules]

    if args.check_inventory:
        pinned = [
            line.strip()
            for line in pathlib.Path(args.check_inventory)
            .read_text(encoding="utf-8")
            .splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
        if sorted(pinned) != sorted(inventory):
            missing = sorted(set(pinned) - set(inventory))
            extra = sorted(set(inventory) - set(pinned))
            sys.stderr.write(
                f"pcon-lint: rule inventory drift — pinned list "
                f"{args.check_inventory} disagrees with the "
                f"registered rules.\n"
                f"  pinned but not registered: "
                f"{', '.join(missing) or '(none)'}\n"
                f"  registered but not pinned: "
                f"{', '.join(extra) or '(none)'}\n"
                f"Update the pin (or register the module in "
                f"default_rules).\n"
            )
            return 1
        sys.stderr.write(
            f"pcon-lint: rule inventory matches "
            f"({len(inventory)} rules)\n"
        )
        return 0
    if args.rules != "all":
        wanted = {r.strip() for r in args.rules.split(",")}
        known = {r.name for r in rules}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown rule(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        rules = [r for r in rules if r.name in wanted]

    if args.list_rules:
        for rule in rules:
            print(f"{rule.name:24s} {rule.description}")
        return 0

    if args.selftest:
        failures = (
            engine_selftest()
            + scan_selftest()
            + model_selftest()
            + sarif_selftest()
        )
        for rule in rules:
            failures.extend(rule.selftest())
        if failures:
            for failure in failures:
                sys.stderr.write(f"selftest FAILED: {failure}\n")
            return 1
        sys.stderr.write(
            f"selftest passed for: engine, scanner, "
            f"{', '.join(r.name for r in rules)}\n"
        )

    scopes = sorted({s for r in rules for s in r.scope})
    try:
        project = Project.load(args.root, scopes)
    except FileNotFoundError as err:
        sys.stderr.write(f"pcon-lint: {err}\n")
        return 2

    findings, suppressions, stale = run_rules_with_stale(
        project, rules, known_rule_names=inventory
    )
    report = report_json if args.json else report_human
    report(rules, project, findings, suppressions,
           stale=stale, strict=args.strict)
    if args.sarif:
        write_sarif(args.sarif, rules, project, findings,
                    suppressions, stale, args.strict)
    return 1 if findings or (args.strict and stale) else 0


if __name__ == "__main__":
    sys.exit(main())
