"""pcon-lint command line.

Usage:
  python3 tools/pcon_lint [--root REPO] [--rules a,b] [--json]
                          [--selftest] [--list-rules] [--strict]
                          [--shared-types FILE]

Runs the project's static-analysis rules (layering, units,
hook-order, determinism, concurrency-primitives, shared-state,
guarded-members, bench-timing) over the repository and reports findings as
``path:line: [rule] message`` lines, or as a JSON document with
``--json`` (used by CI to upload an artifact). ``--selftest`` first
exercises the shared engine (comment/string/raw-string blanking, the
scope scanner) and every selected rule against its embedded synthetic
violations — proving each rule still fails where it must — and then
scans the real tree.

Suppressions that no longer silence anything are reported as *stale*;
``--strict`` (the CI mode) turns them into failures so dead
exemptions cannot accumulate. ``--shared-types`` points the
guarded-members rule at an alternate type list (used by the fixture
tests).

Exits 0 when clean, 1 with findings, selftest failures, or (under
--strict) stale suppressions, 2 on usage errors. See
docs/STATIC_ANALYSIS.md for the rule catalogue and the
``// pcon-lint: allow(<rule>)`` suppression syntax.
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from cpp_scan import scan_selftest
from engine import (
    Project,
    engine_selftest,
    report_human,
    report_json,
    run_rules_with_stale,
)
from rules_arena import ArenaNodesRule
from rules_bench_timing import BenchTimingRule
from rules_concurrency import ConcurrencyPrimitivesRule
from rules_determinism import DeterminismRule
from rules_guarded_members import GuardedMembersRule
from rules_hook_order import HookOrderRule
from rules_layering import LayeringRule
from rules_shared_state import SharedStateRule
from rules_units import UnitsRule


def default_rules(shared_types_path=None):
    return [
        LayeringRule(),
        UnitsRule(),
        HookOrderRule(),
        DeterminismRule(),
        ConcurrencyPrimitivesRule(),
        SharedStateRule(),
        GuardedMembersRule(shared_types_path=shared_types_path),
        BenchTimingRule(),
        ArenaNodesRule(),
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="pcon-lint", description=__doc__
    )
    parser.add_argument(
        "--root",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent.parent
        ),
        help="repository root (default: the checkout containing "
        "this tool)",
    )
    parser.add_argument(
        "--rules",
        default="all",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the engine/scanner selftests and each selected "
        "rule's embedded synthetic-violation fixtures before "
        "scanning the tree",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) on stale suppressions — allow() or "
        "legacy markers that no longer silence any finding",
    )
    parser.add_argument(
        "--shared-types",
        default=None,
        metavar="FILE",
        help="alternate shared_types.toml for the guarded-members "
        "rule (default: tools/pcon_lint/shared_types.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    rules = default_rules(shared_types_path=args.shared_types)
    if args.rules != "all":
        wanted = {r.strip() for r in args.rules.split(",")}
        known = {r.name for r in rules}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown rule(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        rules = [r for r in rules if r.name in wanted]

    if args.list_rules:
        for rule in rules:
            print(f"{rule.name:24s} {rule.description}")
        return 0

    if args.selftest:
        failures = engine_selftest() + scan_selftest()
        for rule in rules:
            failures.extend(rule.selftest())
        if failures:
            for failure in failures:
                sys.stderr.write(f"selftest FAILED: {failure}\n")
            return 1
        sys.stderr.write(
            f"selftest passed for: engine, scanner, "
            f"{', '.join(r.name for r in rules)}\n"
        )

    scopes = sorted({s for r in rules for s in r.scope})
    try:
        project = Project.load(args.root, scopes)
    except FileNotFoundError as err:
        sys.stderr.write(f"pcon-lint: {err}\n")
        return 2

    findings, suppressions, stale = run_rules_with_stale(
        project, rules
    )
    report = report_json if args.json else report_human
    report(rules, project, findings, suppressions,
           stale=stale, strict=args.strict)
    return 1 if findings or (args.strict and stale) else 0


if __name__ == "__main__":
    sys.exit(main())
