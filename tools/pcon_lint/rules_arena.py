"""Arena-nodes rule: hot-path node types are arena-allocated only.

The hot-path allocation pass moved the per-event node types — trace
spans (``util::ChunkedVector`` in the span collector), socket segment
nodes (``util::SlabPool`` in os/socket.h), and per-container ledger
slots (``core::LedgerStore``'s SoA columns) — onto slab arenas
(util/slab_arena.h). A stray ``new Span`` or
``std::make_unique<SegmentQueue::Node>`` reintroduces exactly the
global-allocator churn that pass removed, and worse: it creates a
node whose lifetime is no longer tied to the owning arena, so the
ASan-poisoning lifetime checks cannot see it.

This rule forbids direct heap allocation (``new T``,
``std::make_unique<T>``, ``std::make_shared<T>``) of the listed node
types anywhere in ``src/`` outside each type's owning files. Stack
values, arena placement-new, and pool allocation are untouched.
Escape hatch (justification mandatory, as for shared-state)::

    // pcon-lint: allow(arena-nodes) <why this heap node is safe>
"""

import re

from engine import ALLOW_RE, Finding, Rule

#: Arena-owned node types → the files allowed to manage their
#: storage (the arena/pool owners). Everyone else takes nodes from
#: the owner's allocation surface or builds stack values.
DEFAULT_NODE_TYPES = {
    "Span": ("src/trace/span.h", "src/trace/span.cc"),
    "Segment": ("src/os/socket.h",),
    "SegmentQueue::Node": ("src/os/socket.h",),
    # PowerContainer is a handle over LedgerStore's SoA columns (the
    # actual ledger slots); the lifecycle manager is its one
    # sanctioned allocation surface.
    "PowerContainer": (
        "src/core/container.h",
        "src/core/container_manager.cc",
    ),
}


def heap_alloc_pattern(names):
    """Regex matching a heap allocation of any listed type name,
    optionally namespace-qualified (``new trace::Span``). Longest
    names first so ``SegmentQueue::Node`` beats ``Node``-less
    prefixes; a trailing ``(?!\\w)`` keeps ``Span`` from matching
    ``SpanTracer``."""
    alts = "|".join(
        re.escape(n) for n in sorted(names, key=len, reverse=True)
    )
    return re.compile(
        r"(?:\bnew\s+|\bmake_unique<\s*|\bmake_shared<\s*)"
        r"(?:[A-Za-z_]\w*::)*(" + alts + r")(?!\w)"
    )


class ArenaNodesRule(Rule):
    name = "arena-nodes"
    description = (
        "arena-owned node types (spans, segments, ledger slots) must "
        "not be heap-allocated outside their owning files"
    )
    scope = ("src",)

    def __init__(self, node_types=None):
        self.node_types = dict(
            DEFAULT_NODE_TYPES if node_types is None else node_types
        )
        self.pattern = heap_alloc_pattern(self.node_types)

    def run(self, project):
        findings = []
        for source in project.files_under(self.scope):
            for idx, line in enumerate(source.blanked.splitlines()):
                for m in self.pattern.finditer(line):
                    type_name = m.group(1)
                    owners = self.node_types[type_name]
                    if source.rel in owners:
                        continue
                    findings.append(
                        Finding(
                            self.name,
                            source.rel,
                            idx + 1,
                            f"heap allocation of arena-owned node "
                            f"type '{type_name}' (owned by "
                            f"{', '.join(owners)}); allocate from "
                            f"the owning arena/pool, or add "
                            f"'// pcon-lint: allow(arena-nodes) "
                            f"<why this heap node is safe>'",
                        )
                    )
        return findings

    def suppression_at(self, source, idx):
        """allow(arena-nodes) only counts with a justification."""
        hit = super().suppression_at(source, idx)
        if hit is None:
            return None
        _, marker = hit
        line = source.raw_lines[marker]
        m = ALLOW_RE.search(line)
        tail = line[m.end():].strip() if m else ""
        if not tail:
            return None  # bare allow(): rejected, finding stands
        return f"allow(arena-nodes): {tail}", marker

    def selftest(self):
        errors = []
        rule = ArenaNodesRule(
            node_types={
                "Span": ("src/trace/span.cc",),
                "SegmentQueue::Node": ("src/os/socket.h",),
            }
        )
        project = rule.project_from_texts(
            {
                "src/os/router.cc": (
                    "namespace pcon {\n"
                    "void bad() {\n"
                    "    auto *a = new trace::Span();\n"
                    "    auto b = std::make_unique<Span>();\n"
                    "    auto c = "
                    "std::make_shared<os::SegmentQueue::Node>();\n"
                    "    auto *d = new SpanTracer();\n"
                    "    Span on_stack;\n"
                    "    // pcon-lint: allow(arena-nodes) JSON "
                    "reload path, freed before the arena\n"
                    "    auto *e = new Span();\n"
                    "    // pcon-lint: allow(arena-nodes)\n"
                    "    auto *f = new Span();\n"
                    "}\n"
                    "} // namespace pcon\n"
                ),
                "src/trace/span.cc": (
                    "namespace pcon {\n"
                    "void owner() { auto *s = new Span(); }\n"
                    "} // namespace pcon\n"
                ),
            }
        )
        from engine import run_rules_with_stale

        kept, suppressed, stale = run_rules_with_stale(
            project, [rule]
        )
        got = sorted((f.path, f.line) for f in kept)
        want = [
            ("src/os/router.cc", 3),   # new trace::Span
            ("src/os/router.cc", 4),   # make_unique<Span>
            ("src/os/router.cc", 5),   # make_shared<...::Node>
            ("src/os/router.cc", 11),  # bare allow(): rejected
        ]
        if got != want:
            errors.append(
                f"arena-nodes selftest: expected findings at "
                f"{want}, got {[f.render() for f in kept]}"
            )
        if (
            len(suppressed) != 1
            or "JSON reload" not in suppressed[0].reason
        ):
            errors.append(
                f"arena-nodes selftest: justified allow() did not "
                f"suppress: {[s.render() for s in suppressed]}"
            )
        # The bare allow() must surface as stale so the author
        # learns the comment was rejected, not silently honored.
        if [(s.path, s.line) for s in stale] != [
            ("src/os/router.cc", 10)
        ]:
            errors.append(
                f"arena-nodes selftest: bare allow() should be "
                f"reported stale, got {[s.render() for s in stale]}"
            )
        return errors
