"""Concurrency-primitives rule: one synchronization vocabulary.

The shard-safety contract (DESIGN.md) requires every lock and atomic
in the simulator to carry Clang thread-safety annotations so the
``-Wthread-safety`` analysis can see it. Raw ``std::mutex``,
``std::thread``, ``std::atomic``, and ``volatile`` used for
synchronization are invisible to the analysis, so this rule bans them
everywhere in ``src/`` except the one annotated wrapper header,
``src/util/sync.h``. Tests and benches may use raw primitives (the
stress tests hammer the wrappers *with* ``std::thread`` on purpose).

Suppress a deliberate use with ``// pcon-lint: allow(concurrency-
primitives)`` on the line or the line above.
"""

import re

from engine import Finding, Rule

#: The only file allowed to touch raw primitives: it wraps them.
WRAPPER_HEADER = "src/util/sync.h"

BANNED = [
    (
        re.compile(
            r"std\s*::\s*(?:recursive_|timed_|recursive_timed_|"
            r"shared_timed_|shared_)?mutex\b"
        ),
        "raw standard mutex is invisible to thread-safety analysis; "
        "use util::Mutex / util::SharedMutex (src/util/sync.h)",
    ),
    (
        re.compile(
            r"std\s*::\s*(?:lock_guard|unique_lock|scoped_lock|"
            r"shared_lock)\b"
        ),
        "raw standard lock guard carries no acquire/release "
        "annotations; use util::LockGuard / util::ReadLockGuard / "
        "util::WriteLockGuard",
    ),
    (
        re.compile(r"std\s*::\s*(?:jthread|thread)\b"),
        "raw std::thread inside the simulator core; shard execution "
        "is owned by the engine, components must stay passive",
    ),
    (
        re.compile(r"std\s*::\s*(?:atomic\b|atomic_flag\b|atomic_)"),
        "raw std::atomic hides its memory-order contract; use "
        "util::Atomic (relaxed tally semantics) or a guarded member",
    ),
    (
        re.compile(r"std\s*::\s*condition_variable\b"),
        "condition variables need annotated lock pairing; none is "
        "wrapped yet — coordinate via the shard barrier instead",
    ),
    (
        re.compile(r"(?<![\w:])volatile\b"),
        "volatile is not a synchronization primitive; use "
        "util::Atomic or a guarded member",
    ),
]


class ConcurrencyPrimitivesRule(Rule):
    name = "concurrency-primitives"
    description = (
        "raw std::mutex/std::thread/std::atomic/volatile are banned "
        "in src/ outside util/sync.h; use the annotated wrappers"
    )
    scope = ("src",)

    def run(self, project):
        findings = []
        for source in project.files_under(self.scope):
            if source.rel == WRAPPER_HEADER:
                continue
            for idx, line in enumerate(source.blanked_lines):
                for regex, why in BANNED:
                    if regex.search(line):
                        findings.append(
                            Finding(
                                self.name, source.rel, idx + 1, why
                            )
                        )
        return findings

    def selftest(self):
        errors = []
        rule = ConcurrencyPrimitivesRule()
        project = rule.project_from_texts(
            {
                "src/core/bad.cc": (
                    "#include <mutex>\n"
                    "std::mutex m;\n"
                    "std::lock_guard<std::mutex> g(m);\n"
                    "std::atomic<int> n{0};\n"
                    "volatile int flag = 0;\n"
                    "std::thread worker;\n"
                ),
                "src/core/suppressed.cc": (
                    "// pcon-lint: allow(concurrency-primitives)\n"
                    "std::atomic_flag once;\n"
                ),
                "src/util/sync.h": (
                    "#include <mutex>\n"
                    "class Mutex { std::mutex m_; };\n"
                ),
                "src/core/clean.cc": (
                    '#include "util/sync.h"\n'
                    "util::Mutex mu;\n"
                    "util::Atomic<int> count;\n"
                    "// a comment saying std::mutex is fine here\n"
                    'const char *s = "std::thread in a string";\n'
                ),
            }
        )
        from engine import run_rules_with_stale

        kept, suppressed, stale = run_rules_with_stale(
            project, [rule]
        )
        bad = [f for f in kept if f.path == "src/core/bad.cc"]
        # line 3 carries two hits (lock_guard + the mutex type arg)
        if sorted({f.line for f in bad}) != [2, 3, 4, 5, 6]:
            errors.append(
                f"concurrency selftest: expected hits on bad.cc "
                f"lines 2-6, got {[f.render() for f in bad]}"
            )
        if any(f.path != "src/core/bad.cc" for f in kept):
            errors.append(
                f"concurrency selftest: false positive(s): "
                f"{[f.render() for f in kept if f.path != 'src/core/bad.cc']}"
            )
        if [s.path for s in suppressed] != ["src/core/suppressed.cc"]:
            errors.append(
                "concurrency selftest: allow() comment did not "
                "suppress"
            )
        if stale:
            errors.append(
                f"concurrency selftest: spurious stale report: "
                f"{[s.render() for s in stale]}"
            )
        return errors
