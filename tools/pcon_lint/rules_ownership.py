"""Ownership rules: the shard-ownership manifest must stay honest.

``ownership.toml`` plus in-source markers classify every type the
PDES engine will care about as shard-owned / cross-shard /
host-global / value (see cpp_model.py). Two rules police that
classification itself, so the escape analysis built on top of it can
be trusted:

``ownership``
    Manifest and marker integrity. Every failure is a *finding*, not
    a crash — a rotten manifest must fail CI loudly, with a file:line
    pointing into the manifest or the offending header:

      * manifest parse/shape errors (bad TOML, unknown tables,
        non-string headers, unknown ownership class in [files]);
      * a type listed whose name matches no scanned definition, or
        whose declared header does not define it (the work list must
        not rot);
      * a type listed under two ownership classes;
      * an in-source marker that contradicts the manifest entry for
        the same type;
      * a [channels] entry naming an unknown type, or a channel that
        does not classify cross-shard (channels *are* the sanctioned
        cross-shard surface);
      * a [files] default naming no scanned file;
      * a shared_types.toml type (the guarded-members work list —
        types accessed from several shards) classified shard-owned:
        the two manifests would contradict each other.

``ownership-coverage``
    Every non-nested type defined under the covered layers
    ([coverage] layers in the manifest) must resolve an ownership
    class — via marker, manifest entry, or [files] default. An
    unclassified type in a covered layer is exactly the blind spot
    the escape analysis cannot see through. Suppressible only with a
    justified ``allow(ownership-coverage)``.
"""

import pathlib

from cpp_model import (
    classify,
    load_ownership,
    model_for,
)
from engine import Finding, Rule
from rules_guarded_members import load_shared_types

DEFAULT_OWNERSHIP = (
    pathlib.Path(__file__).resolve().parent / "ownership.toml"
)


def manifest_for(path):
    """Load the manifest, defaulting to the tool's own copy, and
    remember a repo-relative-ish display path for findings."""
    path = pathlib.Path(path) if path else DEFAULT_OWNERSHIP
    manifest = load_ownership(path)
    manifest.rel = path.name if path.is_absolute() else str(path)
    # Keep the canonical tool-relative spelling for the default copy
    # so findings are clickable from the repo root.
    if path == DEFAULT_OWNERSHIP:
        manifest.rel = "tools/pcon_lint/ownership.toml"
    return manifest


class OwnershipRule(Rule):
    name = "ownership"
    description = (
        "ownership.toml and in-source shard-ownership markers must "
        "agree, resolve, and not rot"
    )
    scope = ("src",)

    def __init__(self, ownership_path=None, shared_types_path=None):
        self.ownership_path = ownership_path
        self.shared_types_path = shared_types_path

    def run(self, project):
        manifest = manifest_for(self.ownership_path)
        model = model_for(project)
        findings = []

        def report(line, message):
            findings.append(
                Finding(self.name, manifest.rel, line, message)
            )

        for message in manifest.errors:
            report(1, message)
        for name, cls_a, cls_b in manifest.duplicates:
            report(
                manifest.line(cls_b, name),
                f"type '{name}' is listed under both [{cls_a}] and "
                f"[{cls_b}]; a type has exactly one ownership class",
            )

        for name, cls in sorted(manifest.classes.items()):
            defs = model.defs.get(name, ())
            header = manifest.headers.get(name, "")
            if not defs:
                report(
                    manifest.line(cls, name),
                    f"[{cls}] {name}: no scanned file defines a "
                    f"type with this name (the manifest must not "
                    f"rot)",
                )
            elif not any(t.rel == header for t in defs):
                have = ", ".join(sorted({t.rel for t in defs}))
                report(
                    manifest.line(cls, name),
                    f"[{cls}] {name}: declared header '{header}' "
                    f"does not define it (defined in: {have})",
                )

        for rel in sorted(manifest.file_defaults):
            if rel not in model.tus:
                report(
                    manifest.line("files", rel),
                    f"[files] {rel}: no such scanned file",
                )

        classes, conflicts = classify(model, manifest)
        for t, marker_cls, manifest_cls in conflicts:
            findings.append(
                Finding(
                    self.name,
                    t.rel,
                    t.marker_line or t.line,
                    f"type '{t.name}' is marked '{marker_cls}' in "
                    f"source but '{manifest_cls}' in "
                    f"{manifest.rel}; make them agree",
                )
            )

        for name in sorted(manifest.channels):
            if name not in model.defs:
                report(
                    manifest.line("channels", name),
                    f"[channels] {name}: no scanned file defines a "
                    f"type with this name",
                )
                continue
            owned = {
                classes[id(t)].cls
                for t in model.defs.get(name, ())
                if id(t) in classes
            }
            if owned and owned != {"cross-shard"}:
                report(
                    manifest.line("channels", name),
                    f"[channels] {name}: a sanctioned channel must "
                    f"classify cross-shard, not "
                    f"{', '.join(sorted(owned))}",
                )

        # Cross-check against the guarded-members work list: a type
        # accessed from several shards cannot be shard-owned.
        shared_path = (
            self.shared_types_path
            or pathlib.Path(__file__).resolve().parent
            / "shared_types.toml"
        )
        try:
            shared_types, _ = load_shared_types(shared_path)
        except (OSError, ValueError):
            shared_types = {}  # guarded-members reports this itself
        for name in sorted(shared_types):
            if manifest.classes.get(name) == "shard-owned":
                report(
                    manifest.line("shard-owned", name),
                    f"[shard-owned] {name}: also listed in "
                    f"shared_types.toml (cross-shard access), the "
                    f"classifications contradict",
                )
        return findings

    def selftest(self):
        import tempfile

        errors = []
        texts = {
            "src/os/kernel.h": (
                "namespace pcon::os {\n"
                "// pcon-lint: shard-owned\n"
                "class Kernel { int ticks_ = 0; };\n"
                "class Socket { int fd_ = 0; };\n"
                "class Pipe { int lanes_ = 0; };\n"
                "}\n"
            ),
        }
        manifest_text = (
            "[shard-owned]\n"
            'Ghost = "src/os/ghost.h"\n'
            'Socket = "src/os/kernel.h"\n'
            'Pipe = "src/os/elsewhere.h"\n'
            "[cross-shard]\n"
            'Ghost = "src/os/ghost.h"\n'
            "[host-global]\n"
            'Kernel = "src/os/kernel.h"\n'
            "[channels]\n"
            'Socket = "segment handoff"\n'
            "[files]\n"
            '"src/os/missing.h" = "value"\n'
            "[coverage]\n"
            "layers = []\n"
        )
        with tempfile.NamedTemporaryFile(
            "w", suffix=".toml", delete=False
        ) as fh:
            fh.write(manifest_text)
            manifest_path = fh.name
        try:
            rule = OwnershipRule(ownership_path=manifest_path)
            project = rule.project_from_texts(texts)
            findings = rule.run(project)
            messages = "\n".join(f.message for f in findings)
            for needle, what in [
                ("no scanned file defines", "unknown type (Ghost)"),
                ("listed under both", "dual-class listing"),
                ("does not define it", "header mismatch (Pipe)"),
                (
                    "marked 'shard-owned' in source but "
                    "'host-global'",
                    "marker/manifest conflict (Kernel)",
                ),
                ("no such scanned file", "[files] rot"),
                ("must classify cross-shard", "channel class check"),
            ]:
                if needle not in messages:
                    errors.append(
                        f"ownership selftest: missed {what} "
                        f"(no finding containing {needle!r})"
                    )
            conflict = [
                f for f in findings if "make them agree" in f.message
            ]
            if conflict and conflict[0].path != "src/os/kernel.h":
                errors.append(
                    "ownership selftest: conflict finding should "
                    "point at the in-source marker"
                )
        finally:
            pathlib.Path(manifest_path).unlink()

        # A malformed manifest is findings, never an exception.
        rule = OwnershipRule(ownership_path="/nonexistent/o.toml")
        findings = rule.run(rule.project_from_texts(texts))
        if not any(
            "cannot load ownership manifest" in f.message
            for f in findings
        ):
            errors.append(
                "ownership selftest: unreadable manifest did not "
                "become a finding"
            )
        return errors


class OwnershipCoverageRule(Rule):
    name = "ownership-coverage"
    description = (
        "every type in the covered layers resolves an ownership "
        "class (marker, manifest, or [files] default)"
    )
    scope = ("src",)
    require_justification = True

    def __init__(self, ownership_path=None):
        self.ownership_path = ownership_path

    def run(self, project):
        manifest = manifest_for(self.ownership_path)
        if manifest.errors:
            return []  # the ownership rule reports these
        model = model_for(project)
        classes, _ = classify(model, manifest)
        prefixes = tuple(
            f"src/{layer}/" for layer in manifest.coverage_layers
        )
        if not prefixes:
            return []
        findings = []
        for name in sorted(model.defs):
            for t in model.defs[name]:
                if not t.rel.startswith(prefixes):
                    continue
                if t.nested or id(t) in classes:
                    continue
                findings.append(
                    Finding(
                        self.name,
                        t.rel,
                        t.line,
                        f"type '{t.name}' in a covered layer has no "
                        f"ownership class; add a marker, an "
                        f"ownership.toml entry, or a [files] "
                        f"default",
                    )
                )
        return findings

    def selftest(self):
        import tempfile

        errors = []
        texts = {
            "src/os/kernel.h": (
                "namespace pcon::os {\n"
                "class PCON_SHARD_OWNED Kernel {\n"
                "    int ticks_ = 0;\n"
                "    struct Stats { int n_ = 0; };\n"
                "};\n"
                "class Orphan { int x_ = 0; };\n"
                "}\n"
            ),
            "src/hw/config.h": (
                "namespace pcon::hw {\n"
                "struct CoreConfig { int mhz_ = 0; };\n"
                "}\n"
            ),
            "src/util/misc.h": (
                "namespace pcon::util {\n"
                "class Helper { int h_ = 0; };\n"
                "}\n"
            ),
        }
        manifest_text = (
            "[files]\n"
            '"src/hw/config.h" = "value"\n'
            "[coverage]\n"
            'layers = ["os", "hw"]\n'
        )
        with tempfile.NamedTemporaryFile(
            "w", suffix=".toml", delete=False
        ) as fh:
            fh.write(manifest_text)
            manifest_path = fh.name
        try:
            rule = OwnershipCoverageRule(
                ownership_path=manifest_path
            )
            project = rule.project_from_texts(texts)
            findings = rule.run(project)
            got = sorted(
                (f.path, f.message.split("'")[1]) for f in findings
            )
            if got != [("src/os/kernel.h", "Orphan")]:
                errors.append(
                    f"coverage selftest: expected exactly Orphan "
                    f"uncovered, got {got} (marker, nested-type "
                    f"inheritance, [files] default, or layer "
                    f"filtering is broken)"
                )
        finally:
            pathlib.Path(manifest_path).unlink()
        return errors
