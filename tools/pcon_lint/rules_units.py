"""Units rule: energy/power quantities in src/ use the strong types.

``util::Joules``, ``util::Watts`` (src/util/units.h) replace raw
``double`` on public API surfaces. This rule rejects any *new* double
parameter, member, local, or return type whose identifier names an
energy or power quantity — matching ``(energy|power|watts|joules)``
case-insensitively — anywhere in src/ outside units.h itself.

Declarations that must stay double (an FFI boundary, a printf shim)
take ``// pcon-lint: allow(units)`` with the usual placement rules.
"""

import re

from engine import Finding, Rule

QUANTITY = r"energy|power|watts|joules"

# double <identifier-containing-quantity> followed by a declarator
# terminator that classifies the declaration. The '(' case catches
# functions *named* like a quantity returning a raw double.
DECL_RE = re.compile(
    r"\bdouble\s+(&?\s*)?(?P<name>[A-Za-z_]\w*)\s*(?P<tail>[,;)=({])"
)
NAME_RE = re.compile(QUANTITY, re.IGNORECASE)

KIND_BY_TAIL = {
    "(": "return type of",
    ",": "parameter",
    ")": "parameter",
    ";": "member/local",
    "=": "member/local",
    "{": "member/local",
}


class UnitsRule(Rule):
    name = "units"
    description = (
        "energy/power declarations in src/ use util::Joules / "
        "util::Watts instead of raw double"
    )
    scope = ("src",)
    exempt = ("src/util/units.h", "src/util/units.cc")

    def run(self, project):
        findings = []
        for source in project.files_under(self.scope):
            if source.rel in self.exempt:
                continue
            for idx, line in enumerate(source.blanked_lines):
                for m in DECL_RE.finditer(line):
                    ident = m.group("name")
                    if not NAME_RE.search(ident):
                        continue
                    kind = KIND_BY_TAIL[m.group("tail")]
                    findings.append(
                        Finding(
                            self.name,
                            source.rel,
                            idx + 1,
                            f"raw double {kind} '{ident}' names an "
                            f"energy/power quantity; use "
                            f"util::Joules / util::Watts from "
                            f"src/util/units.h (or annotate "
                            f"`// pcon-lint: allow(units)` with a "
                            f"reason)",
                        )
                    )
        return findings

    def selftest(self):
        errors = []
        rule = UnitsRule()
        project = rule.project_from_texts(
            {
                "src/hw/meter.h": (
                    "struct S {\n"
                    "    double energyJ = 0.0;\n"  # member
                    "    double watts() const;\n"  # return
                    "    void set(double power_w);\n"  # parameter
                    "    double okRatio = 0.0;\n"  # clean
                    "    util::Joules typedEnergyJ{0};\n"  # clean
                    "};\n"
                ),
                "src/util/units.h": (
                    "class Joules { double joules_ = 0.0; };\n"
                ),
            }
        )
        found = rule.run(project)
        lines = sorted(f.line for f in found)
        if lines != [2, 3, 4]:
            errors.append(
                f"units selftest: expected findings at lines "
                f"[2, 3, 4] of meter.h, got "
                f"{[f.render() for f in found]}"
            )

        suppressed = rule.project_from_texts(
            {
                "src/hw/meter.h": (
                    "// pcon-lint: allow(units)\n"
                    "double rawPowerW = 0.0;\n"
                )
            }
        )
        raw = rule.run(suppressed)
        kept = [
            f
            for f in raw
            if not rule.suppression_reason(
                suppressed.files[0], f.line - 1
            )
        ]
        if kept:
            errors.append(
                "units selftest: allow(units) did not suppress"
            )
        return errors
