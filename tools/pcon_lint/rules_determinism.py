"""Determinism rule: the deterministic core must be reproducible.

Folded into pcon-lint from the original tools/lint_determinism.py
(whose CLI is preserved as a thin shim). Simulation results must be
bit-identical across runs and platforms; this rule scans the
deterministic core for reproducibility hazards:

  wall-clock       time(), clock(), gettimeofday(), std::chrono
                   system/steady/high_resolution clocks.
  ambient-rng      std::random_device, rand()/srand()/random(),
                   drand48(), std::mt19937 & friends.
  unordered-iter   range-for over a std::unordered_{map,set} member
                   declared in the scanned tree.
  ptr-keyed-order  std::{map,set} keyed by a raw pointer type.
  metric-name      registry counter()/gauge()/histogram() names must
                   match the grammar [a-z0-9_.]+.

Suppress with the legacy ``// NOLINT-DETERMINISM(reason)`` (reason
mandatory) on the line or the line above, or with the framework-wide
``// pcon-lint: allow(determinism)``.
"""

import re

from engine import Finding, Rule

CORE_SCOPE = (
    "src/sim",
    "src/core",
    "src/hw",
    "src/obs",
    "src/perf",
    "src/telemetry",
    "src/trace",
)

LEGACY_SUPPRESS_RE = re.compile(r"NOLINT-DETERMINISM\(([^)]+)\)")

PATTERN_HAZARDS = [
    (
        "wall-clock",
        re.compile(
            r"(?<![\w:.])(?:time|clock|gettimeofday|clock_gettime)"
            r"\s*\("
        ),
        "wall-clock call; use sim::Simulation::now() instead",
    ),
    (
        "wall-clock",
        re.compile(
            r"std\s*::\s*chrono\s*::\s*"
            r"(?:system_clock|steady_clock|high_resolution_clock)"
        ),
        "host clock; simulated components must use sim time",
    ),
    (
        "ambient-rng",
        re.compile(r"std\s*::\s*random_device"),
        "non-deterministic entropy source; seed a sim::Rng instead",
    ),
    (
        "ambient-rng",
        re.compile(
            r"(?<![\w:.])(?:rand|srand|random|drand48|lrand48)\s*\("
        ),
        "C library RNG with process-global state; use sim::Rng",
    ),
    (
        "ambient-rng",
        re.compile(
            r"std\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
            r"default_random_engine|ranlux\w+|knuth_b)"
        ),
        "standard-library engine; distributions differ across "
        "implementations, use sim::Rng",
    ),
    (
        "ptr-keyed-order",
        re.compile(r"std\s*::\s*(?:map|set)\s*<[^,>]*\*\s*[,>]"),
        "ordered container keyed by pointer value; iteration order "
        "depends on allocation addresses",
    ),
]

DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<"
    r"[^;{}()]*>(?:\s*&)?\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(
    r"for\s*\([^;)]*:\s*\*?\s*([A-Za-z_]\w*)\s*\)"
)

METRIC_CALL_RE = re.compile(
    r"(?<![\w:])(?:counter|gauge|histogram)\s*\("
)
METRIC_NAME_RE = re.compile(r"[a-z0-9_.]+")


def metric_name_findings(raw_line, blanked_line):
    """Metric-grammar violations on one line (hazard, message)."""
    bad = []
    for match in METRIC_CALL_RE.finditer(blanked_line):
        at = match.end()
        while at < len(raw_line) and raw_line[at].isspace():
            at += 1
        if at >= len(raw_line) or raw_line[at] != '"':
            continue  # non-literal name: not statically checkable
        end = raw_line.find('"', at + 1)
        if end < 0:
            continue
        name = raw_line[at + 1 : end]
        if not METRIC_NAME_RE.fullmatch(name):
            bad.append(
                (
                    "metric-name",
                    f"metric name '{name}' violates the grammar "
                    f"[a-z0-9_.]+",
                )
            )
    return bad


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no wall-clock, ambient RNG, or hash-order dependence in "
        "the deterministic core; metric names follow [a-z0-9_.]+"
    )
    scope = CORE_SCOPE

    def __init__(self, scope=None, metric_names_only=False):
        if scope is not None:
            self.scope = tuple(scope)
        self.metric_names_only = metric_names_only

    def run(self, project):
        files = project.files_under(self.scope)
        unordered_names = set()
        for source in files:
            for m in DECL_RE.finditer(source.blanked):
                unordered_names.add(m.group(1))

        findings = []
        for source in files:
            for idx, line in enumerate(source.blanked_lines):
                hits = []
                if not self.metric_names_only:
                    for hazard, regex, why in PATTERN_HAZARDS:
                        if regex.search(line):
                            hits.append((hazard, why))
                    for m in RANGE_FOR_RE.finditer(line):
                        if m.group(1) in unordered_names:
                            hits.append(
                                (
                                    "unordered-iter",
                                    f"range-for over unordered "
                                    f"container '{m.group(1)}'; "
                                    f"hash order is not "
                                    f"reproducible",
                                )
                            )
                if idx < len(source.raw_lines):
                    hits.extend(
                        metric_name_findings(
                            source.raw_lines[idx], line
                        )
                    )
                for hazard, why in hits:
                    findings.append(
                        Finding(
                            self.name,
                            source.rel,
                            idx + 1,
                            f"[{hazard}] {why}",
                        )
                    )
        return findings

    def suppression_at(self, source, idx):
        """Accept the legacy NOLINT-DETERMINISM(reason) marker in
        addition to the framework-wide allow(determinism)."""
        for look in (idx, idx - 1):
            if 0 <= look < len(source.raw_lines):
                m = LEGACY_SUPPRESS_RE.search(source.raw_lines[look])
                if m:
                    return m.group(1).strip(), look
        return super().suppression_at(source, idx)

    def suppression_markers(self, source):
        """Legacy NOLINT-DETERMINISM markers are also subject to
        stale detection, so retired exemptions cannot linger."""
        out = set(super().suppression_markers(source))
        for idx, line in enumerate(source.raw_lines):
            if LEGACY_SUPPRESS_RE.search(line):
                out.add(idx)
        return sorted(out)

    def selftest(self):
        errors = []
        rule = DeterminismRule()
        project = rule.project_from_texts(
            {
                "src/sim/clock.cc": (
                    "#include <chrono>\n"
                    "auto t = std::chrono::steady_clock::now();\n"
                    "int r = rand();\n"
                    "// NOLINT-DETERMINISM(test fixture)\n"
                    "int s = rand();\n"
                ),
                "src/core/metrics.cc": (
                    'reg.counter("Bad Name");\n'
                    'reg.counter("good.name");\n'
                ),
                "src/core/stale.cc": (
                    "// NOLINT-DETERMINISM(no longer needed)\n"
                    "int fine = 0;\n"
                ),
            }
        )
        from engine import run_rules_with_stale

        kept, _, stale = run_rules_with_stale(project, [rule])
        got = sorted((f.path, f.line) for f in kept)
        want = [
            ("src/core/metrics.cc", 1),
            ("src/sim/clock.cc", 2),
            ("src/sim/clock.cc", 3),
        ]
        if got != want:
            errors.append(
                f"determinism selftest: expected findings at "
                f"{want}, got {[f.render() for f in kept]}"
            )
        got_stale = [(s.path, s.line) for s in stale]
        if got_stale != [("src/core/stale.cc", 1)]:
            errors.append(
                f"determinism selftest: expected one stale legacy "
                f"suppression at src/core/stale.cc:1, got "
                f"{got_stale}"
            )
        return errors
