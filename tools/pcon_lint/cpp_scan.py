"""Lightweight C++ scope/statement scanner for pcon-lint rules.

Walks a comment/string-blanked translation unit tracking the brace
nesting and classifying every scope as ``namespace``, ``class``
(class/struct/union/enum bodies), or ``block`` (function bodies,
control flow, lambdas, ...). Statements — ``;``-terminated runs of
text, with brace-initializers kept inline — are yielded with their
enclosing scope, the scope's name path, and the 1-based line the
statement starts on. ``scan_all`` additionally yields the scopes
themselves (head text, start/end lines), which the cross-TU project
model (cpp_model.py) uses to build per-type symbol tables.

Template heads are understood well enough to not derail the scope
classification: ``template <...>`` parameter lists (including
defaults containing parentheses) and trailing ``requires`` clauses
are stripped before a scope-opening statement is classified, so
members of a templated class are attributed to the class, not to the
enclosing namespace or a phantom block.

This is a heuristic scanner, not a parser: it is precise enough for
declaration-shaped checks (namespace-scope variables, class member
lists) on this codebase's style, and rules built on it accept an
``allow()`` escape hatch for the cases it gets wrong.
"""

import re

#: Statement openers that always introduce a plain block.
BLOCK_KEYWORDS = ("if", "else", "for", "while", "do", "switch", "try",
                  "catch")

CLASS_NAME_RE = re.compile(
    r"\b(?:class|struct|union)\s+"
    r"(?:alignas\s*\([^)]*\)\s*)?"
    r"(?:[A-Z_][A-Z0-9_]*\s*\([^)]*\)\s*)*"  # attribute macro(...)
    r"(?:PCON_[A-Z0-9_]+\s+)*"  # bare tag macros (PCON_SHARD_OWNED)
    r"([A-Za-z_]\w*)"
)
NAMESPACE_NAME_RE = re.compile(r"\bnamespace\s+([A-Za-z_][\w:]*)")


class Statement:
    """One scanned statement."""

    __slots__ = ("scope", "path", "line", "text")

    def __init__(self, scope, path, line, text):
        self.scope = scope  # 'namespace' | 'class' | 'block'
        self.path = path  # tuple of enclosing scope names
        self.line = line  # 1-based first line
        self.text = text  # single-spaced statement text, no ';'


def _strip_template_head(s):
    """Drop leading ``template <...>`` parameter lists (balanced
    angle brackets, so defaults like ``int N = f(3)`` survive) and a
    trailing ``requires`` clause, returning the text from the first
    class/struct/union/namespace keyword onward. Without this, a
    constrained or defaulted template head containing parentheses
    made the scope classifier call the class body a block and hand
    its members to the enclosing namespace."""
    s = s.strip()
    while True:
        m = re.match(r"template\s*<", s)
        if not m:
            break
        depth, i = 1, m.end()
        while i < len(s) and depth:
            if s[i] == "<":
                depth += 1
            elif s[i] == ">":
                depth -= 1
            i += 1
        s = s[i:].lstrip()
    if re.match(r"requires\b", s):
        m = re.search(r"\b(?:class|struct|union|namespace)\b", s)
        if m:
            s = s[m.start():]
    return s


def _classify_open(stmt):
    """What kind of scope does a '{' ending ``stmt`` open?

    Returns ('namespace'|'class'|'block', name) for a real scope, or
    None when the brace is an initializer that stays inside the
    statement (aggregate/brace init).
    """
    s = stmt.strip()
    if s.startswith("template") or s.startswith("requires"):
        s = _strip_template_head(s)
    if not s:
        return ("block", "")  # bare compound statement
    first = re.match(r"[A-Za-z_]\w*", s)
    head = first.group(0) if first else ""
    if head == "namespace" or s.startswith('extern "') or (
        s.startswith("extern") and "(" not in s and "=" not in s
    ):
        m = NAMESPACE_NAME_RE.search(s)
        return ("namespace", m.group(1) if m else "<anonymous>")
    if re.search(r"\benum\b", s) and "=" not in s:
        return ("class", "")
    m = CLASS_NAME_RE.search(s)
    if m and "=" not in s and "(" not in s[: m.start()]:
        # 'class X {', 'struct X : Base {'. A '(' before the keyword
        # would mean a function returning a class type — a block.
        return ("class", m.group(1))
    if head in BLOCK_KEYWORDS or s.endswith(")") or "(" in s:
        # control flow, function definitions, lambdas-in-calls
        return ("block", "")
    if s.endswith("=") or s.endswith(",") or s.endswith("{"):
        return None  # '= {', nested init list
    if re.search(r"[A-Za-z_]\w*\s*$", s) and " " in s:
        # 'Type name{...}' brace-init of a variable: no parens, no
        # class keyword, identifier right before the brace.
        return None
    return ("block", "")


def _strip_preprocessor(text):
    """Blank preprocessor directives (and their continuation lines):
    they are line-oriented, never ';'-terminated, and would otherwise
    glue themselves onto the next real statement."""
    out = []
    continuing = False
    for line in text.split("\n"):
        directive = continuing or line.lstrip().startswith("#")
        continuing = directive and line.rstrip().endswith("\\")
        out.append(" " * len(line) if directive else line)
    return "\n".join(out)


class Scope:
    """One scanned scope (namespace/class/block) with its head."""

    __slots__ = ("kind", "name", "path", "line", "end_line", "head")

    def __init__(self, kind, name, path, line, head):
        self.kind = kind  # 'namespace' | 'class' | 'block'
        self.name = name  # '' for anonymous scopes
        self.path = path  # tuple of *enclosing* scope names
        self.line = line  # 1-based line the head statement starts on
        self.end_line = line  # filled in when the scope closes
        self.head = head  # single-spaced head text before the '{'


def scan_all(blanked_text):
    """Scan a blanked translation unit; returns (statements, scopes).

    Statements are as in ``scan_statements``; scopes record every
    namespace/class/block opened, with the head text that opened it
    and the line range it spans (the project model reads class heads
    for ownership tag macros and base-class lists).
    """
    blanked_text = _strip_preprocessor(blanked_text)
    scope_stack = [("namespace", "<file>")]
    open_scopes = [None]  # parallel: Scope object or None for root
    stmt = []
    stmt_line = 1
    line = 1
    init_depth = 0  # >0 while inside an initializer brace
    out = []
    scopes = []
    for c in blanked_text:
        if c == "\n":
            line += 1
        if init_depth > 0:
            stmt.append(c)
            if c == "{":
                init_depth += 1
            elif c == "}":
                init_depth -= 1
            continue
        if c == "{":
            head = " ".join("".join(stmt).split())
            opened = _classify_open("".join(stmt))
            if opened is None:
                init_depth = 1
                stmt.append(c)
                continue
            path = tuple(
                name for k, name in scope_stack[1:] if name
            )
            record = Scope(opened[0], opened[1], path, stmt_line,
                           head)
            scopes.append(record)
            scope_stack.append(opened)
            open_scopes.append(record)
            stmt = []
            stmt_line = line
            continue
        if c == "}":
            if len(scope_stack) > 1:
                scope_stack.pop()
                record = open_scopes.pop()
                if record is not None:
                    record.end_line = line
            stmt = []
            stmt_line = line
            continue
        if c == ":" and "".join(stmt).strip() in (
            "public", "private", "protected"
        ):
            stmt = []  # access label: a boundary, not a statement
            stmt_line = line
            continue
        if c == ";":
            text = " ".join("".join(stmt).split())
            if text:
                kind, _ = scope_stack[-1]
                path = tuple(
                    name for k, name in scope_stack[1:] if name
                )
                out.append(Statement(kind, path, stmt_line, text))
            stmt = []
            stmt_line = line
            continue
        if not stmt and c in " \t\n":
            stmt_line = line if c != "\n" else line
            continue
        if not stmt:
            stmt_line = line
        stmt.append(c)
    return out, scopes


def scan_statements(blanked_text):
    """Yield Statement objects for a blanked translation unit."""
    statements, _ = scan_all(blanked_text)
    return statements


def enclosing_class(statement):
    """Innermost class name a class-scope statement belongs to."""
    return statement.path[-1] if statement.path else ""


def scan_selftest():
    """Exercise the scanner; returns a list of error strings."""
    errors = []
    src = (
        "namespace outer {\n"
        "namespace {\n"
        "int gShared = 0;\n"
        "}\n"
        'class PCON_CAPABILITY("x") Guarded {\n'
        "  public:\n"
        "    void lock();\n"
        "  private:\n"
        "    int value_ = 0;\n"
        "};\n"
        "void work() {\n"
        "    static int calls = 0;\n"
        "    int local = 0;\n"
        "    if (local) { calls += local; }\n"
        "}\n"
        "Config gConfig = {1, 2};\n"
        "}\n"
    )
    stmts = scan_statements(src)
    by_text = {s.text: s for s in stmts}
    g = by_text.get("int gShared = 0")
    if g is None or g.scope != "namespace":
        errors.append("scan selftest: missed namespace-scope gShared")
    member = by_text.get("int value_ = 0")
    if member is None or member.scope != "class":
        errors.append("scan selftest: missed class member value_")
    elif enclosing_class(member) != "Guarded":
        errors.append(
            f"scan selftest: member attributed to "
            f"'{enclosing_class(member)}', want 'Guarded'"
        )
    local = by_text.get("static int calls = 0")
    if local is None or local.scope != "block":
        errors.append("scan selftest: missed static local 'calls'")
    cfg = by_text.get("Config gConfig = {1, 2}")
    if cfg is None or cfg.scope != "namespace":
        errors.append(
            "scan selftest: aggregate-initialized global mishandled"
        )

    # Templated classes: a multi-line template head with a
    # parenthesized default argument and a requires clause must not
    # demote the class body to a block (members would then be
    # attributed to the enclosing namespace).
    src = (
        "namespace tpl {\n"
        "template <typename T,\n"
        "          int N = probe(3)>\n"
        "  requires (sizeof(T) > 1)\n"
        "class Ring\n"
        "{\n"
        "  public:\n"
        "    void push(T v);\n"
        "  private:\n"
        "    T slots_[N];\n"
        "    int head_ = 0;\n"
        "};\n"
        "template <typename T> T clamp(T v, T lo) {\n"
        "    return v < lo ? lo : v;\n"
        "}\n"
        "template <> struct Traits<int>\n"
        "{\n"
        "    int width_ = 32;\n"
        "};\n"
        "}\n"
    )
    stmts, scopes = scan_all(src)
    by_text = {s.text: s for s in stmts}
    head = by_text.get("int head_ = 0")
    if head is None or head.scope != "class":
        errors.append(
            "scan selftest: templated-class member lost (template "
            "head with parenthesized default / requires clause)"
        )
    elif enclosing_class(head) != "Ring":
        errors.append(
            f"scan selftest: templated-class member attributed to "
            f"'{enclosing_class(head)}', want 'Ring'"
        )
    width = by_text.get("int width_ = 32")
    if width is None or width.scope != "class":
        errors.append(
            "scan selftest: explicit-specialization member lost"
        )
    ring = next((s for s in scopes if s.name == "Ring"), None)
    if ring is None or ring.kind != "class":
        errors.append("scan selftest: no scope recorded for Ring")
    elif ring.line != 2 or ring.end_line != 12:
        errors.append(
            f"scan selftest: Ring scope lines {ring.line}.."
            f"{ring.end_line}, want 2..12"
        )
    elif "template" not in ring.head:
        errors.append(
            "scan selftest: Ring scope head lost its template text"
        )

    # Bare PCON_* tag macros in a class head must not be mistaken
    # for the class name.
    stmts = scan_statements(
        "class PCON_SHARD_OWNED Widget {\n"
        "    int spin_ = 0;\n"
        "};\n"
    )
    member = next(
        (s for s in stmts if s.text == "int spin_ = 0"), None
    )
    if member is None or enclosing_class(member) != "Widget":
        errors.append(
            "scan selftest: PCON_* tag macro swallowed the class "
            "name"
        )
    return errors
