"""Shard-escape rule: shard-owned state must not leak off its shard.

The future PDES engine (ROADMAP item 1) runs one worker thread per
simulated machine. Its byte-identical-results gate holds only if no
mutable shard state is reachable from outside the shard except
through the sanctioned channels (ownership.toml [channels]: sockets,
the remote-request ledger, the kernel hook surface, ...). This rule
proves that property on the current tree using the cross-TU
ownership model (cpp_model.py):

  * a namespace-scope variable (or block-scope ``static``) of a
    shard-owned type — a global is reachable from every shard;
  * a data member of a host-global or non-channel cross-shard type
    that stores, points at, or references a shard-owned type;
  * a method of such a type returning a non-const reference or
    pointer to a shard-owned type — a mutable window into the shard.

Method *parameters* are deliberately out of scope: a call executes
on the calling shard's thread, so passing a shard-owned reference
down a call chain does not move it across shards; only *storing* it
does. References between two shard-owned types are intra-shard by
construction (the ownership forest is rooted at one Machine/Kernel
pair per shard).

Every hit is either a real escape to fix before the engine lands or
a deliberate harness-side seam; the latter needs a *justified*
``allow(shard-escape)`` — bare allows do not suppress.
"""

import re

from cpp_model import classify, model_for
from engine import Finding, Rule
from rules_ownership import manifest_for

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

#: Statement heads at namespace scope that are not variable
#: definitions.
NON_VARIABLE_HEADS = {
    "using", "typedef", "template", "friend", "static_assert",
    "class", "struct", "union", "enum", "namespace", "extern",
    "return", "if", "for", "while", "switch", "void", "explicit",
    "virtual", "operator", "inline", "constexpr",
}

KEYWORDS = {
    "const", "constexpr", "static", "mutable", "inline", "volatile",
    "unsigned", "signed", "long", "short", "int", "char", "bool",
    "float", "double", "auto", "void", "struct", "class", "union",
    "typename", "public", "private", "protected", "virtual",
    "override", "final", "noexcept", "std",
}


def _type_idents(text):
    """Identifiers that could name a type in a declaration fragment
    (keywords and std:: vocabulary filtered out)."""
    return [
        i for i in IDENT_RE.findall(text) if i not in KEYWORDS
    ]


def _shard_owned_ref(model, classes, rel, idents):
    """First identifier that resolves (through ``rel``'s include
    closure) to a shard-owned type, or None."""
    for name in idents:
        t = model.visible(rel, name)
        if t is None:
            continue
        c = classes.get(id(t))
        if c is not None and c.cls == "shard-owned":
            return name
    return None


class ShardEscapeRule(Rule):
    name = "shard-escape"
    description = (
        "shard-owned types may not be stored globally, held by "
        "host-global/non-channel types, or returned mutably from "
        "them"
    )
    scope = ("src",)
    require_justification = True

    def __init__(self, ownership_path=None):
        self.ownership_path = ownership_path

    def run(self, project):
        manifest = manifest_for(self.ownership_path)
        if manifest.errors:
            return []  # the ownership rule reports these
        model = model_for(project)
        classes, _ = classify(model, manifest)
        channels = set(manifest.channels)
        findings = []

        from cpp_model import resolve_context
        from cpp_scan import scan_statements

        # 1. Globals and static locals of shard-owned types.
        for source in project.files_under(self.scope):
            for stmt in scan_statements(source.blanked):
                if stmt.scope == "namespace":
                    decl = stmt.text.split("=", 1)[0]
                    head = IDENT_RE.match(decl.strip())
                    if (
                        "(" in decl
                        or not head
                        or head.group(0) in NON_VARIABLE_HEADS
                    ):
                        continue
                elif stmt.scope == "block" and re.match(
                    r"static\b", stmt.text
                ):
                    decl = stmt.text.split("=", 1)[0]
                    if "(" in decl:
                        continue
                else:
                    continue
                idents = _type_idents(decl)
                if len(idents) < 2:
                    continue  # need at least a type and a name
                hit = _shard_owned_ref(
                    model, classes, source.rel, idents[:-1]
                )
                if hit:
                    where = (
                        "namespace-scope variable"
                        if stmt.scope == "namespace"
                        else "function-static variable"
                    )
                    findings.append(
                        Finding(
                            self.name,
                            source.rel,
                            stmt.line,
                            f"{where} of shard-owned type '{hit}': "
                            f"reachable from every shard; own it "
                            f"from the Machine/Kernel forest "
                            f"instead",
                        )
                    )

        # 2./3. Members and mutable returns of host-global or
        # non-channel cross-shard types.
        for name in sorted(model.defs):
            for t in model.defs[name]:
                ctx = resolve_context(model, classes, t)
                if ctx not in ("host-global", "cross-shard"):
                    continue
                if ctx == "cross-shard" and (
                    t.name in channels
                    or any(
                        b in channels for b in t.base_names()
                    )
                ):
                    continue  # sanctioned carrier (or a hook shim)
                for member in t.members:
                    decl = member.text.split("=", 1)[0]
                    idents = _type_idents(decl)
                    if len(idents) < 2:
                        continue
                    hit = _shard_owned_ref(
                        model, classes, t.rel, idents[:-1]
                    )
                    if hit:
                        findings.append(
                            Finding(
                                self.name,
                                t.rel,
                                member.line,
                                f"{ctx} type '{t.name}' stores "
                                f"shard-owned '{hit}'; route "
                                f"through a sanctioned channel or "
                                f"justify the seam",
                            )
                        )
                for method in t.methods:
                    sig = method.text.split("(", 1)[0]
                    if "&" not in sig and "*" not in sig:
                        continue
                    if re.search(r"\bconst\b", sig):
                        continue
                    idents = _type_idents(sig)
                    if len(idents) < 2:
                        continue
                    hit = _shard_owned_ref(
                        model, classes, t.rel, idents[:-1]
                    )
                    if hit:
                        findings.append(
                            Finding(
                                self.name,
                                t.rel,
                                method.line,
                                f"{ctx} type '{t.name}' returns a "
                                f"mutable reference/pointer to "
                                f"shard-owned '{hit}'",
                            )
                        )
        return findings

    def selftest(self):
        import pathlib
        import tempfile

        errors = []
        texts = {
            "src/os/kernel.h": (
                "namespace pcon::os {\n"
                "class PCON_SHARD_OWNED Kernel {\n"
                "    int ticks_ = 0;\n"
                "};\n"
                "Kernel gKernel;\n"
                "void probe(Kernel &k);\n"
                "}\n"
            ),
            "src/os/socket.h": (
                '#include "os/kernel.h"\n'
                "namespace pcon::os {\n"
                "// pcon-lint: cross-shard\n"
                "class Socket {\n"
                "    Kernel *peer_ = nullptr;\n"
                "};\n"
                "// pcon-lint: cross-shard\n"
                "class Mailbox {\n"
                "    Kernel *owner_ = nullptr;\n"
                "};\n"
                "}\n"
            ),
            "src/obs/registry.h": (
                '#include "os/kernel.h"\n'
                "namespace pcon::obs {\n"
                "// pcon-lint: host-global\n"
                "class Registry {\n"
                "  public:\n"
                "    os::Kernel &kernel();\n"
                "    const os::Kernel &peek() const;\n"
                "  private:\n"
                "    os::Kernel &kernel_;  "
                "// pcon-lint: allow(shard-escape) harness wiring, "
                "read only between runs\n"
                "    int count_ = 0;\n"
                "};\n"
                "void tick() {\n"
                "    static os::Kernel gFallback;\n"
                "}\n"
                "}\n"
            ),
            "src/obs/blind.h": (
                "namespace pcon::obs {\n"
                "// pcon-lint: host-global\n"
                "class Blind {\n"
                "    Kernel *guess_ = nullptr;\n"
                "};\n"
                "}\n"
            ),
        }
        manifest_text = (
            "[channels]\n"
            'Socket = "segment handoff surface"\n'
            "[coverage]\n"
            "layers = []\n"
        )
        with tempfile.NamedTemporaryFile(
            "w", suffix=".toml", delete=False
        ) as fh:
            fh.write(manifest_text)
            manifest_path = fh.name
        try:
            from engine import run_rules_with_stale

            rule = ShardEscapeRule(ownership_path=manifest_path)
            project = rule.project_from_texts(texts)
            kept, sups, _ = run_rules_with_stale(project, [rule])
            got = sorted((f.path, f.line) for f in kept)
            want = [
                ("src/obs/registry.h", 6),  # mutable ref return
                ("src/obs/registry.h", 13),  # static local
                ("src/os/kernel.h", 5),  # namespace-scope global
                ("src/os/socket.h", 9),  # non-channel cross-shard
            ]
            if got != want:
                errors.append(
                    f"shard-escape selftest: expected findings at "
                    f"{want}, got "
                    f"{[(f.path, f.line, f.message) for f in kept]}"
                )
            if len(sups) != 1 or "harness wiring" not in sups[0].reason:
                errors.append(
                    "shard-escape selftest: justified member allow "
                    "not honoured"
                )
            # Blind.h never includes kernel.h: Kernel is not visible
            # there, so no finding may fire (visibility gating).
            if any(f.path == "src/obs/blind.h" for f in kept):
                errors.append(
                    "shard-escape selftest: fired without include-"
                    "closure visibility"
                )
            # The sanctioned channel (Socket) and the const return
            # (peek) must be quiet; the parameter (probe) excluded.
            noisy = [
                f
                for f in kept
                if f.line == 5 and f.path == "src/os/socket.h"
            ]
            if noisy:
                errors.append(
                    "shard-escape selftest: sanctioned channel "
                    "member was flagged"
                )
        finally:
            pathlib.Path(manifest_path).unlink()
        return errors
