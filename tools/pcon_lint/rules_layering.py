"""Layering rule: the src/ include graph must follow layering.toml.

Every ``#include "layer/..."`` in ``src/<layer>/`` must point at the
same layer or one listed among its allowed dependencies. The TOML DAG
itself is validated first: unknown layer names or cycles are reported
against the config file.
"""

import pathlib
import re
import tomllib

from engine import Finding, Rule

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

CONFIG_PATH = pathlib.Path(__file__).resolve().parent / "layering.toml"


def load_layers(text):
    return tomllib.loads(text)["layers"]


def dag_errors(layers):
    """Config-level problems: unknown deps and cycles."""
    errors = []
    for layer, deps in sorted(layers.items()):
        for dep in deps:
            if dep not in layers:
                errors.append(
                    f"layer '{layer}' depends on unknown layer "
                    f"'{dep}'"
                )
    # Cycle check via depth-first search over the dependency edges.
    state = {}  # name -> "visiting" | "done"

    def visit(name, stack):
        if state.get(name) == "done":
            return
        if state.get(name) == "visiting":
            cycle = stack[stack.index(name):] + [name]
            errors.append(
                "dependency cycle: " + " -> ".join(cycle)
            )
            return
        state[name] = "visiting"
        for dep in layers.get(name, []):
            if dep in layers:
                visit(dep, stack + [name])
        state[name] = "done"

    for name in sorted(layers):
        visit(name, [])
    return errors


class LayeringRule(Rule):
    name = "layering"
    description = (
        "src/ include DAG pinned by tools/pcon_lint/layering.toml"
    )
    scope = ("src",)

    def __init__(self, config_text=None):
        self.config_text = (
            config_text
            if config_text is not None
            else CONFIG_PATH.read_text(encoding="utf-8")
        )

    def run(self, project):
        layers = load_layers(self.config_text)
        config_rel = "tools/pcon_lint/layering.toml"
        findings = [
            Finding(self.name, config_rel, 1, err)
            for err in dag_errors(layers)
        ]
        if findings:
            return findings

        for source in project.files_under(self.scope):
            parts = source.rel.split("/")
            # src/<layer>/...: files directly under src/ (pcon.h, the
            # umbrella header) belong to no layer and may see all.
            if len(parts) < 3 or parts[0] != "src":
                continue
            layer = parts[1]
            if layer not in layers:
                findings.append(
                    Finding(
                        self.name,
                        source.rel,
                        1,
                        f"directory src/{layer} is not a layer in "
                        f"layering.toml; add it with an explicit "
                        f"dependency list",
                    )
                )
                continue
            allowed = set(layers[layer]) | {layer}
            # Raw lines: include paths are string literals, which the
            # shared blanking pass erases. Commented-out includes are
            # skipped by re-checking the blanked line for the '#'.
            for idx, line in enumerate(source.raw_lines):
                m = INCLUDE_RE.match(line)
                if not m:
                    continue
                if idx < len(source.blanked_lines) and (
                    "#" not in source.blanked_lines[idx]
                ):
                    continue
                target = m.group(1).split("/")[0]
                if target not in layers:
                    continue  # relative or non-layer include
                if target not in allowed:
                    arrow = (
                        "upward"
                        if layer in layers.get(target, [])
                        else "banned"
                    )
                    findings.append(
                        Finding(
                            self.name,
                            source.rel,
                            idx + 1,
                            f"{arrow} include: src/{layer} may not "
                            f"include \"{m.group(1)}\" (allowed: "
                            f"{', '.join(sorted(allowed))})",
                        )
                    )
        return findings

    def selftest(self):
        errors = []
        config = (
            "[layers]\n"
            'util = []\n'
            'sim = ["util"]\n'
            'hw = ["sim", "util"]\n'
        )
        rule = LayeringRule(config_text=config)

        # An upward include must be flagged with file and line.
        project = rule.project_from_texts(
            {
                "src/sim/time.h": (
                    "#include \"util/logging.h\"\n"
                    "#include \"hw/machine.h\"\n"
                )
            }
        )
        found = rule.run(project)
        if len(found) != 1 or found[0].line != 2:
            errors.append(
                f"layering selftest: expected one finding at line 2, "
                f"got {[f.render() for f in found]}"
            )

        # The same include under allow(layering) must be suppressed.
        project = rule.project_from_texts(
            {
                "src/sim/time.h": (
                    "// pcon-lint: allow(layering)\n"
                    "#include \"hw/machine.h\"\n"
                )
            }
        )
        raw = rule.run(project)
        kept = [
            f
            for f in raw
            if not rule.suppression_reason(
                project.files[0], f.line - 1
            )
        ]
        if kept:
            errors.append(
                "layering selftest: allow(layering) did not suppress"
            )

        # A cyclic config must fail against the config file itself.
        cyclic = LayeringRule(
            config_text=(
                "[layers]\n"
                'util = ["sim"]\n'
                'sim = ["util"]\n'
            )
        )
        found = cyclic.run(rule.project_from_texts({}))
        if not any("cycle" in f.message for f in found):
            errors.append(
                "layering selftest: dependency cycle not detected"
            )
        return errors
